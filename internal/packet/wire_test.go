package packet

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleSegment() *Segment {
	return &Segment{
		Src:    Endpoint{Addr: MakeAddr(10, 0, 0, 1), Port: 43210},
		Dst:    Endpoint{Addr: MakeAddr(10, 0, 1, 2), Port: 80},
		Seq:    0xdeadbeef,
		Ack:    0x01020304,
		Flags:  FlagACK | FlagPSH,
		Window: 32000,
		Options: []Option{
			&MSSOption{MSS: 1460},
			&WindowScaleOption{Shift: 7},
			&TimestampsOption{Val: 123456, Echo: 654321},
		},
		Payload: []byte("hello multipath world"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	seg := sampleSegment()
	wire, err := Encode(seg)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(seg.Src.Addr, seg.Dst.Addr, wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Seq != seg.Seq || got.Ack != seg.Ack || got.Flags != seg.Flags || got.Window != seg.Window {
		t.Fatalf("header mismatch: got %+v want %+v", got, seg)
	}
	if !bytes.Equal(got.Payload, seg.Payload) {
		t.Fatalf("payload mismatch")
	}
	if len(got.Options) != len(seg.Options) {
		t.Fatalf("option count mismatch: got %d want %d", len(got.Options), len(seg.Options))
	}
	for i := range seg.Options {
		if !reflect.DeepEqual(got.Options[i], seg.Options[i]) {
			t.Errorf("option %d mismatch: got %#v want %#v", i, got.Options[i], seg.Options[i])
		}
	}
}

func TestEncodeChecksumValid(t *testing.T) {
	seg := sampleSegment()
	wire, err := Encode(seg)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifyTCPChecksum(seg.Src, seg.Dst, wire) {
		t.Fatal("checksum of freshly encoded segment must verify")
	}
	// Corrupt one payload byte; the checksum must fail.
	wire[len(wire)-1] ^= 0xff
	if VerifyTCPChecksum(seg.Src, seg.Dst, wire) {
		t.Fatal("corrupted segment must not verify")
	}
}

func TestMPTCPOptionRoundTrips(t *testing.T) {
	options := []Option{
		&MPCapableOption{Version: 0, ChecksumRequired: true, SenderKey: 0x1122334455667788},
		&MPCapableOption{SenderKey: 1, ReceiverKey: 2, HasReceiverKey: true},
		&MPJoinOption{Phase: JoinSYN, AddrID: 3, Backup: true, ReceiverToken: 0xabcdef01, SenderNonce: 42},
		&MPJoinOption{Phase: JoinSYNACK, AddrID: 4, SenderHMAC: []byte{1, 2, 3, 4, 5, 6, 7, 8}, SenderNonce: 7},
		&MPJoinOption{Phase: JoinACK, SenderHMAC: bytes.Repeat([]byte{0xaa}, 20)},
		&DSSOption{HasDataACK: true, DataACK: 123456789},
		&DSSOption{HasDataACK: true, DataACK: 1, HasMapping: true, DataSeq: 99, SubflowOffset: 1000, Length: 1460, HasChecksum: true, Checksum: 0xbeef},
		&DSSOption{HasMapping: true, DataSeq: 5, SubflowOffset: 0, Length: 0, DataFIN: true},
		&AddAddrOption{AddrID: 2, Addr: MakeAddr(192, 168, 1, 7), Port: 8080},
		&AddAddrOption{AddrID: 3, Addr: MakeAddr(192, 168, 1, 8)},
		&RemoveAddrOption{AddrIDs: []uint8{2, 3}},
		&MPPrioOption{AddrID: 9, Backup: true},
		&MPFailOption{DataSeq: 0xfeedface},
		&FastcloseOption{ReceiverKey: 0x0102030405060708},
	}
	for _, opt := range options {
		seg := &Segment{
			Src:     Endpoint{Addr: MakeAddr(1, 1, 1, 1), Port: 1},
			Dst:     Endpoint{Addr: MakeAddr(2, 2, 2, 2), Port: 2},
			Flags:   FlagACK,
			Options: []Option{opt},
		}
		wire, err := Encode(seg)
		if err != nil {
			t.Fatalf("%s: encode: %v", opt, err)
		}
		got, err := Decode(seg.Src.Addr, seg.Dst.Addr, wire)
		if err != nil {
			t.Fatalf("%s: decode: %v", opt, err)
		}
		if len(got.Options) != 1 {
			t.Fatalf("%s: got %d options", opt, len(got.Options))
		}
		if !reflect.DeepEqual(got.Options[0], opt) {
			t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got.Options[0], opt)
		}
	}
}

func TestOptionSpaceLimit(t *testing.T) {
	seg := sampleSegment()
	for i := 0; i < 6; i++ {
		seg.Options = append(seg.Options, &DSSOption{HasDataACK: true, DataACK: 1, HasMapping: true, Length: 1})
	}
	if _, err := Encode(seg); err == nil {
		t.Fatal("expected an error when options exceed 40 bytes")
	}
}

// TestDSSOptionQuick is a property test: any DSS option combination encodes
// into at most 40 bytes... and decodes to the same values.
func TestDSSOptionQuick(t *testing.T) {
	f := func(dataAck uint64, dataSeq uint64, off uint32, length uint16, hasAck, hasMap, fin, csum bool, csumVal uint16) bool {
		opt := &DSSOption{
			HasDataACK: hasAck, DataACK: DataSeq(dataAck),
			HasMapping: hasMap, DataSeq: DataSeq(dataSeq), SubflowOffset: off, Length: length,
			HasChecksum: hasMap && csum, Checksum: csumVal,
			DataFIN: fin,
		}
		seg := &Segment{
			Src:     Endpoint{Addr: 1, Port: 1},
			Dst:     Endpoint{Addr: 2, Port: 2},
			Flags:   FlagACK,
			Options: []Option{opt},
		}
		wire, err := Encode(seg)
		if err != nil {
			return false
		}
		got, err := Decode(seg.Src.Addr, seg.Dst.Addr, wire)
		if err != nil || len(got.Options) != 1 {
			return false
		}
		d, ok := got.Options[0].(*DSSOption)
		if !ok {
			return false
		}
		if d.HasDataACK != opt.HasDataACK || d.HasMapping != opt.HasMapping || d.DataFIN != opt.DataFIN {
			return false
		}
		if opt.HasDataACK && d.DataACK != opt.DataACK {
			return false
		}
		if opt.HasMapping && (d.DataSeq != opt.DataSeq || d.SubflowOffset != opt.SubflowOffset || d.Length != opt.Length) {
			return false
		}
		if opt.HasChecksum && d.Checksum != opt.Checksum {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestSeqNumComparisons(t *testing.T) {
	cases := []struct {
		a, b SeqNum
		less bool
	}{
		{1, 2, true},
		{2, 1, false},
		{5, 5, false},
		{0xffffff00, 0x00000010, true}, // wraparound
		{0x00000010, 0xffffff00, false},
	}
	for _, c := range cases {
		if got := c.a.LessThan(c.b); got != c.less {
			t.Errorf("LessThan(%d,%d)=%v want %v", c.a, c.b, got, c.less)
		}
	}
	if !SeqNum(10).InRange(10, 20) || SeqNum(20).InRange(10, 20) {
		t.Fatal("InRange boundary behaviour wrong")
	}
}

func TestSegmentCloneIsDeep(t *testing.T) {
	seg := sampleSegment()
	cl := seg.Clone()
	cl.Payload[0] = 'X'
	cl.Options[0].(*MSSOption).MSS = 9
	if seg.Payload[0] == 'X' || seg.Options[0].(*MSSOption).MSS == 9 {
		t.Fatal("Clone must deep-copy payload and options")
	}
}

func TestRemoveOptions(t *testing.T) {
	seg := sampleSegment()
	seg.Options = append(seg.Options, &MPCapableOption{SenderKey: 5})
	removed := seg.RemoveOptions(func(o Option) bool { return o.Kind() == OptMPTCP })
	if removed != 1 || seg.HasMPTCP() {
		t.Fatalf("expected exactly the MPTCP option to be removed, removed=%d", removed)
	}
}
