package packet

import "encoding/binary"

// Checksum computes the 16-bit ones-complement sum of data (the Internet
// checksum used in the TCP header and, per §3.3.6 of the paper, reused for
// the DSS checksum so the payload only needs to be summed once).
func Checksum(data []byte) uint16 {
	return FoldChecksum(PartialChecksum(0, data))
}

// PartialChecksum accumulates the ones-complement sum of data into sum. The
// running sum is kept unfolded (32-bit) so that partial sums over payload and
// pseudo-headers can be combined, mirroring how the Linux implementation
// calculates the payload checksum once and feeds it into both the TCP and the
// DSS checksum.
//
// The inner loop consumes 32 bytes per iteration as four 64-bit big-endian
// loads with end-around carry, which is congruent (mod 2^16-1) to the
// classic 16-bit-word sum and roughly an order of magnitude faster — the
// per-byte software checksum cost is exactly what Figure 3 of the paper
// measures, so the emulator's own cost model (CalibrateChecksumCost) tracks
// this implementation.
func PartialChecksum(sum uint32, data []byte) uint32 {
	// The 8-byte-aligned prefix is summed as native-endian 64-bit words: the
	// one's-complement sum is byte-order independent (RFC 1071 §2B), so the
	// prefix can be accumulated without per-load byte swapping and the folded
	// 16-bit result swapped once at the end. Each word is split into its
	// 32-bit halves, summed branch-free into independent accumulators
	// (partial terms stay below 2^33, so the accumulators cannot overflow
	// for any realistic segment, and the parallel chains hide load latency).
	var acc0, acc1, acc2, acc3 uint64
	for len(data) >= 32 {
		w0 := binary.LittleEndian.Uint64(data)
		w1 := binary.LittleEndian.Uint64(data[8:])
		w2 := binary.LittleEndian.Uint64(data[16:])
		w3 := binary.LittleEndian.Uint64(data[24:])
		acc0 += (w0 >> 32) + (w0 & 0xffffffff)
		acc1 += (w1 >> 32) + (w1 & 0xffffffff)
		acc2 += (w2 >> 32) + (w2 & 0xffffffff)
		acc3 += (w3 >> 32) + (w3 & 0xffffffff)
		data = data[32:]
	}
	for len(data) >= 8 {
		w := binary.LittleEndian.Uint64(data)
		acc0 += (w >> 32) + (w & 0xffffffff)
		data = data[8:]
	}
	// Fold the native-order sum to 16 bits and swap it into network order
	// (values congruent mod 2^16-1 fold to the same final checksum, so any
	// width reduction preserving the congruence works).
	le := acc0 + acc1 + acc2 + acc3
	le = (le >> 32) + (le & 0xffffffff)
	le = (le >> 32) + (le & 0xffffffff)
	le16 := uint32(le>>16) + uint32(le&0xffff)
	for le16 > 0xffff {
		le16 = (le16 >> 16) + (le16 & 0xffff)
	}
	s32 := sum + (le16&0xff)<<8 + le16>>8
	i, n := 0, len(data)
	for ; i+1 < n; i += 2 {
		s32 += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < n {
		s32 += uint32(data[i]) << 8
	}
	return s32
}

// FoldChecksum folds a 32-bit running sum into the final 16-bit ones
// complement value.
func FoldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// CombineChecksums adds a previously folded checksum value back into a
// running sum (used when composing pseudo-header and payload sums).
func CombineChecksums(sum uint32, folded uint16) uint32 {
	return sum + uint32(^folded)
}

// DSSPseudoHeader builds the MPTCP DSS checksum pseudo-header: the 64-bit
// data sequence number, the 32-bit relative subflow sequence number, the
// 16-bit data-level length and a zero pad (RFC 6824 §3.3.1).
func DSSPseudoHeader(dataSeq DataSeq, subflowOffset uint32, length uint16) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(dataSeq))
	binary.BigEndian.PutUint32(b[8:12], subflowOffset)
	binary.BigEndian.PutUint16(b[12:14], length)
	// b[14:16] is the zero-filled checksum field.
	return b[:]
}

// DSSChecksum computes the DSS checksum over the pseudo-header and payload.
// The pseudo-header is summed from a stack array (no allocation): this is
// the per-segment hot path when UseDSSChecksum is on, charged once at the
// sender and once at the receiver.
func DSSChecksum(dataSeq DataSeq, subflowOffset uint32, length uint16, payload []byte) uint16 {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(dataSeq))
	binary.BigEndian.PutUint32(b[8:12], subflowOffset)
	binary.BigEndian.PutUint16(b[12:14], length)
	// b[14:16] is the zero-filled checksum field.
	sum := PartialChecksum(0, b[:])
	sum = PartialChecksum(sum, payload)
	return FoldChecksum(sum)
}

// VerifyDSSChecksum reports whether the DSS checksum in the option matches
// the payload it maps. Content-modifying middleboxes (§3.3.6) are detected by
// a mismatch here.
func VerifyDSSChecksum(opt *DSSOption, payload []byte) bool {
	if !opt.HasChecksum {
		return true
	}
	return DSSChecksum(opt.DataSeq, opt.SubflowOffset, opt.Length, payload) == opt.Checksum
}

// pseudoHeaderSum computes the TCP pseudo-header contribution for the
// emulated IPv4 addressing scheme.
func pseudoHeaderSum(src, dst Endpoint, tcpLen int) uint32 {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(src.Addr))
	binary.BigEndian.PutUint32(b[4:8], uint32(dst.Addr))
	b[8] = 0
	b[9] = 6 // protocol number for TCP
	binary.BigEndian.PutUint16(b[10:12], uint16(tcpLen))
	return PartialChecksum(0, b[:])
}

// TCPChecksum computes the TCP checksum over the pseudo-header, the encoded
// TCP header (with a zeroed checksum field) and the payload.
func TCPChecksum(src, dst Endpoint, header, payload []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, len(header)+len(payload))
	sum = PartialChecksum(sum, header)
	sum = PartialChecksum(sum, payload)
	return FoldChecksum(sum)
}
