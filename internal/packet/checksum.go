package packet

import "encoding/binary"

// Checksum computes the 16-bit ones-complement sum of data (the Internet
// checksum used in the TCP header and, per §3.3.6 of the paper, reused for
// the DSS checksum so the payload only needs to be summed once).
func Checksum(data []byte) uint16 {
	return FoldChecksum(PartialChecksum(0, data))
}

// PartialChecksum accumulates the ones-complement sum of data into sum. The
// running sum is kept unfolded (32-bit) so that partial sums over payload and
// pseudo-headers can be combined, mirroring how the Linux implementation
// calculates the payload checksum once and feeds it into both the TCP and the
// DSS checksum.
func PartialChecksum(sum uint32, data []byte) uint32 {
	n := len(data)
	i := 0
	for ; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if i < n {
		sum += uint32(data[i]) << 8
	}
	return sum
}

// FoldChecksum folds a 32-bit running sum into the final 16-bit ones
// complement value.
func FoldChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// CombineChecksums adds a previously folded checksum value back into a
// running sum (used when composing pseudo-header and payload sums).
func CombineChecksums(sum uint32, folded uint16) uint32 {
	return sum + uint32(^folded)
}

// DSSPseudoHeader builds the MPTCP DSS checksum pseudo-header: the 64-bit
// data sequence number, the 32-bit relative subflow sequence number, the
// 16-bit data-level length and a zero pad (RFC 6824 §3.3.1).
func DSSPseudoHeader(dataSeq DataSeq, subflowOffset uint32, length uint16) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(dataSeq))
	binary.BigEndian.PutUint32(b[8:12], subflowOffset)
	binary.BigEndian.PutUint16(b[12:14], length)
	// b[14:16] is the zero-filled checksum field.
	return b[:]
}

// DSSChecksum computes the DSS checksum over the pseudo-header and payload.
func DSSChecksum(dataSeq DataSeq, subflowOffset uint32, length uint16, payload []byte) uint16 {
	sum := PartialChecksum(0, DSSPseudoHeader(dataSeq, subflowOffset, length))
	sum = PartialChecksum(sum, payload)
	return FoldChecksum(sum)
}

// VerifyDSSChecksum reports whether the DSS checksum in the option matches
// the payload it maps. Content-modifying middleboxes (§3.3.6) are detected by
// a mismatch here.
func VerifyDSSChecksum(opt *DSSOption, payload []byte) bool {
	if !opt.HasChecksum {
		return true
	}
	return DSSChecksum(opt.DataSeq, opt.SubflowOffset, opt.Length, payload) == opt.Checksum
}

// pseudoHeaderSum computes the TCP pseudo-header contribution for the
// emulated IPv4 addressing scheme.
func pseudoHeaderSum(src, dst Endpoint, tcpLen int) uint32 {
	var b [12]byte
	binary.BigEndian.PutUint32(b[0:4], uint32(src.Addr))
	binary.BigEndian.PutUint32(b[4:8], uint32(dst.Addr))
	b[8] = 0
	b[9] = 6 // protocol number for TCP
	binary.BigEndian.PutUint16(b[10:12], uint16(tcpLen))
	return PartialChecksum(0, b[:])
}

// TCPChecksum computes the TCP checksum over the pseudo-header, the encoded
// TCP header (with a zeroed checksum field) and the payload.
func TCPChecksum(src, dst Endpoint, header, payload []byte) uint16 {
	sum := pseudoHeaderSum(src, dst, len(header)+len(payload))
	sum = PartialChecksum(sum, header)
	sum = PartialChecksum(sum, payload)
	return FoldChecksum(sum)
}
