package packet

import (
	"fmt"
	"sort"
)

// OptionKind is a TCP option kind value.
type OptionKind uint8

// TCP option kinds used by this stack.
const (
	OptEOL           OptionKind = 0
	OptNOP           OptionKind = 1
	OptMSS           OptionKind = 2
	OptWindowScale   OptionKind = 3
	OptSACKPermitted OptionKind = 4
	OptSACK          OptionKind = 5
	OptTimestamps    OptionKind = 8
	// OptMPTCP is the IANA-assigned MPTCP option kind (30).
	OptMPTCP OptionKind = 30
)

// MPTCPSubtype identifies an MPTCP option subtype (RFC 6824 §3).
type MPTCPSubtype uint8

// MPTCP option subtypes.
const (
	SubMPCapable  MPTCPSubtype = 0x0
	SubMPJoin     MPTCPSubtype = 0x1
	SubDSS        MPTCPSubtype = 0x2
	SubAddAddr    MPTCPSubtype = 0x3
	SubRemoveAddr MPTCPSubtype = 0x4
	SubMPPrio     MPTCPSubtype = 0x5
	SubMPFail     MPTCPSubtype = 0x6
	SubFastclose  MPTCPSubtype = 0x7
	// SubNone marks a non-MPTCP option.
	SubNone MPTCPSubtype = 0xf
)

// String returns the subtype's protocol name.
func (s MPTCPSubtype) String() string {
	switch s {
	case SubMPCapable:
		return "MP_CAPABLE"
	case SubMPJoin:
		return "MP_JOIN"
	case SubDSS:
		return "DSS"
	case SubAddAddr:
		return "ADD_ADDR"
	case SubRemoveAddr:
		return "REMOVE_ADDR"
	case SubMPPrio:
		return "MP_PRIO"
	case SubMPFail:
		return "MP_FAIL"
	case SubFastclose:
		return "MP_FASTCLOSE"
	default:
		return fmt.Sprintf("MPTCP_SUB_%d", uint8(s))
	}
}

// Option is a TCP option carried in a segment.
type Option interface {
	// Kind returns the TCP option kind.
	Kind() OptionKind
	// Subtype returns the MPTCP subtype, or SubNone for plain TCP options.
	Subtype() MPTCPSubtype
	// WireLen returns the option's encoded length in bytes (without padding).
	WireLen() int
	// CloneOption returns a deep copy of the option.
	CloneOption() Option
	// String renders the option for traces.
	String() string
}

// ---------------------------------------------------------------------------
// Standard TCP options
// ---------------------------------------------------------------------------

// MSSOption advertises the maximum segment size (SYN only).
type MSSOption struct {
	MSS uint16
}

// Kind implements Option.
func (o *MSSOption) Kind() OptionKind { return OptMSS }

// Subtype implements Option.
func (o *MSSOption) Subtype() MPTCPSubtype { return SubNone }

// WireLen implements Option.
func (o *MSSOption) WireLen() int { return 4 }

// CloneOption implements Option.
func (o *MSSOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *MSSOption) String() string { return fmt.Sprintf("mss=%d", o.MSS) }

// WindowScaleOption advertises the receive-window scale shift (SYN only).
type WindowScaleOption struct {
	Shift uint8
}

// Kind implements Option.
func (o *WindowScaleOption) Kind() OptionKind { return OptWindowScale }

// Subtype implements Option.
func (o *WindowScaleOption) Subtype() MPTCPSubtype { return SubNone }

// WireLen implements Option.
func (o *WindowScaleOption) WireLen() int { return 3 }

// CloneOption implements Option.
func (o *WindowScaleOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *WindowScaleOption) String() string { return fmt.Sprintf("wscale=%d", o.Shift) }

// TimestampsOption carries RFC 1323 timestamps.
type TimestampsOption struct {
	Val  uint32
	Echo uint32
}

// Kind implements Option.
func (o *TimestampsOption) Kind() OptionKind { return OptTimestamps }

// Subtype implements Option.
func (o *TimestampsOption) Subtype() MPTCPSubtype { return SubNone }

// WireLen implements Option.
func (o *TimestampsOption) WireLen() int { return 10 }

// CloneOption implements Option.
func (o *TimestampsOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *TimestampsOption) String() string { return fmt.Sprintf("ts val=%d ecr=%d", o.Val, o.Echo) }

// SACKPermittedOption negotiates selective acknowledgements (SYN only).
type SACKPermittedOption struct{}

// Kind implements Option.
func (o *SACKPermittedOption) Kind() OptionKind { return OptSACKPermitted }

// Subtype implements Option.
func (o *SACKPermittedOption) Subtype() MPTCPSubtype { return SubNone }

// WireLen implements Option.
func (o *SACKPermittedOption) WireLen() int { return 2 }

// CloneOption implements Option.
func (o *SACKPermittedOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *SACKPermittedOption) String() string { return "sackOK" }

// SACKBlock is one selective-acknowledgement block.
type SACKBlock struct {
	Left  SeqNum
	Right SeqNum
}

// SACKOption carries selective acknowledgement blocks.
type SACKOption struct {
	Blocks []SACKBlock
}

// Kind implements Option.
func (o *SACKOption) Kind() OptionKind { return OptSACK }

// Subtype implements Option.
func (o *SACKOption) Subtype() MPTCPSubtype { return SubNone }

// WireLen implements Option.
func (o *SACKOption) WireLen() int { return 2 + 8*len(o.Blocks) }

// CloneOption implements Option.
func (o *SACKOption) CloneOption() Option {
	c := &SACKOption{Blocks: append([]SACKBlock(nil), o.Blocks...)}
	return c
}

// String implements Option.
func (o *SACKOption) String() string { return fmt.Sprintf("sack %v", o.Blocks) }

// ---------------------------------------------------------------------------
// MPTCP options (RFC 6824 wire format)
// ---------------------------------------------------------------------------

// MPCapableOption negotiates MPTCP in the initial three-way handshake
// (§3.1 of the paper). The SYN and SYN/ACK each carry the sender's 64-bit
// key; the third ACK carries both keys.
type MPCapableOption struct {
	Version uint8
	// ChecksumRequired mirrors the "A" flag: DSS checksums must be used.
	ChecksumRequired bool
	// SenderKey is the key of the host sending this option.
	SenderKey uint64
	// ReceiverKey is present only on the third ACK (and data echoes of it).
	ReceiverKey    uint64
	HasReceiverKey bool
}

// Kind implements Option.
func (o *MPCapableOption) Kind() OptionKind { return OptMPTCP }

// Subtype implements Option.
func (o *MPCapableOption) Subtype() MPTCPSubtype { return SubMPCapable }

// WireLen implements Option.
func (o *MPCapableOption) WireLen() int {
	if o.HasReceiverKey {
		return 20
	}
	return 12
}

// CloneOption implements Option.
func (o *MPCapableOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *MPCapableOption) String() string {
	if o.HasReceiverKey {
		return fmt.Sprintf("mp_capable[k=%x,%x]", o.SenderKey, o.ReceiverKey)
	}
	return fmt.Sprintf("mp_capable[k=%x]", o.SenderKey)
}

// MPJoinPhase distinguishes the three shapes of MP_JOIN in the subflow
// handshake.
type MPJoinPhase uint8

// MP_JOIN phases.
const (
	JoinSYN MPJoinPhase = iota
	JoinSYNACK
	JoinACK
)

// MPJoinOption adds a new subflow to an existing connection (§3.2).
type MPJoinOption struct {
	Phase  MPJoinPhase
	AddrID uint8
	Backup bool

	// ReceiverToken identifies the connection at the passive opener
	// (SYN only); it is the truncated hash of the receiver's key.
	ReceiverToken uint32
	// SenderNonce is the random nonce used in HMAC computation
	// (SYN and SYN/ACK).
	SenderNonce uint32
	// SenderHMAC authenticates the subflow: truncated to 64 bits in the
	// SYN/ACK, full 160 bits in the third ACK.
	SenderHMAC []byte
}

// Kind implements Option.
func (o *MPJoinOption) Kind() OptionKind { return OptMPTCP }

// Subtype implements Option.
func (o *MPJoinOption) Subtype() MPTCPSubtype { return SubMPJoin }

// WireLen implements Option.
func (o *MPJoinOption) WireLen() int {
	switch o.Phase {
	case JoinSYN:
		return 12
	case JoinSYNACK:
		return 16
	default:
		return 24
	}
}

// CloneOption implements Option.
func (o *MPJoinOption) CloneOption() Option {
	c := *o
	c.SenderHMAC = append([]byte(nil), o.SenderHMAC...)
	return &c
}

// String implements Option.
func (o *MPJoinOption) String() string {
	return fmt.Sprintf("mp_join[phase=%d id=%d tok=%x]", o.Phase, o.AddrID, o.ReceiverToken)
}

// DSSOption carries the data sequence signal: an optional data-level
// cumulative acknowledgement and an optional mapping of subflow bytes into
// the connection-level sequence space (§3.3.2–§3.3.4).
type DSSOption struct {
	// DataACK is the connection-level cumulative acknowledgement (left edge
	// of the shared receive window).
	HasDataACK bool
	DataACK    DataSeq

	// Mapping fields. SubflowOffset is relative to the subflow's initial
	// sequence number so that sequence-rewriting middleboxes do not break
	// the mapping (§3.3.4).
	HasMapping    bool
	DataSeq       DataSeq
	SubflowOffset uint32
	Length        uint16

	// Checksum covers the payload plus the DSS pseudo-header (§3.3.6).
	HasChecksum bool
	Checksum    uint16

	// DataFIN signals the end of the connection-level data stream (§3.4).
	DataFIN bool
}

// Kind implements Option.
func (o *DSSOption) Kind() OptionKind { return OptMPTCP }

// Subtype implements Option.
func (o *DSSOption) Subtype() MPTCPSubtype { return SubDSS }

// WireLen implements Option.
func (o *DSSOption) WireLen() int {
	n := 4 // kind, length, subtype/flags, reserved
	if o.HasDataACK {
		n += 8
	}
	if o.HasMapping {
		n += 8 + 4 + 2 // 64-bit data seq, subflow offset, length
		if o.HasChecksum {
			n += 2
		}
	}
	return n
}

// CloneOption implements Option.
func (o *DSSOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *DSSOption) String() string {
	s := "dss["
	if o.HasDataACK {
		s += fmt.Sprintf("ack=%d ", o.DataACK)
	}
	if o.HasMapping {
		s += fmt.Sprintf("map=%d@%d+%d ", o.DataSeq, o.SubflowOffset, o.Length)
	}
	if o.HasChecksum {
		s += fmt.Sprintf("csum=%04x ", o.Checksum)
	}
	if o.DataFIN {
		s += "dfin "
	}
	return s + "]"
}

// MappingEnd returns the data sequence number just past this mapping.
func (o *DSSOption) MappingEnd() DataSeq { return o.DataSeq + DataSeq(o.Length) }

// AddAddrOption advertises an additional address owned by the sender (§3.2).
type AddAddrOption struct {
	AddrID uint8
	Addr   Addr
	Port   uint16 // zero when not advertised
}

// Kind implements Option.
func (o *AddAddrOption) Kind() OptionKind { return OptMPTCP }

// Subtype implements Option.
func (o *AddAddrOption) Subtype() MPTCPSubtype { return SubAddAddr }

// WireLen implements Option.
func (o *AddAddrOption) WireLen() int {
	if o.Port != 0 {
		return 10
	}
	return 8
}

// CloneOption implements Option.
func (o *AddAddrOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *AddAddrOption) String() string {
	return fmt.Sprintf("add_addr[id=%d %s:%d]", o.AddrID, o.Addr, o.Port)
}

// RemoveAddrOption withdraws previously advertised addresses (§3.4, mobility).
type RemoveAddrOption struct {
	AddrIDs []uint8
}

// Kind implements Option.
func (o *RemoveAddrOption) Kind() OptionKind { return OptMPTCP }

// Subtype implements Option.
func (o *RemoveAddrOption) Subtype() MPTCPSubtype { return SubRemoveAddr }

// WireLen implements Option.
func (o *RemoveAddrOption) WireLen() int { return 3 + len(o.AddrIDs) }

// CloneOption implements Option.
func (o *RemoveAddrOption) CloneOption() Option {
	return &RemoveAddrOption{AddrIDs: append([]uint8(nil), o.AddrIDs...)}
}

// String implements Option.
func (o *RemoveAddrOption) String() string { return fmt.Sprintf("remove_addr%v", o.AddrIDs) }

// MPPrioOption changes a subflow's backup priority.
type MPPrioOption struct {
	AddrID uint8
	Backup bool
}

// Kind implements Option.
func (o *MPPrioOption) Kind() OptionKind { return OptMPTCP }

// Subtype implements Option.
func (o *MPPrioOption) Subtype() MPTCPSubtype { return SubMPPrio }

// WireLen implements Option.
func (o *MPPrioOption) WireLen() int { return 4 }

// CloneOption implements Option.
func (o *MPPrioOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *MPPrioOption) String() string {
	return fmt.Sprintf("mp_prio[id=%d backup=%v]", o.AddrID, o.Backup)
}

// MPFailOption reports a DSS checksum failure in infinite-mapping fallback.
type MPFailOption struct {
	DataSeq DataSeq
}

// Kind implements Option.
func (o *MPFailOption) Kind() OptionKind { return OptMPTCP }

// Subtype implements Option.
func (o *MPFailOption) Subtype() MPTCPSubtype { return SubMPFail }

// WireLen implements Option.
func (o *MPFailOption) WireLen() int { return 12 }

// CloneOption implements Option.
func (o *MPFailOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *MPFailOption) String() string { return fmt.Sprintf("mp_fail[dseq=%d]", o.DataSeq) }

// FastcloseOption aborts the whole MPTCP connection (the multipath analogue
// of RST).
type FastcloseOption struct {
	ReceiverKey uint64
}

// Kind implements Option.
func (o *FastcloseOption) Kind() OptionKind { return OptMPTCP }

// Subtype implements Option.
func (o *FastcloseOption) Subtype() MPTCPSubtype { return SubFastclose }

// WireLen implements Option.
func (o *FastcloseOption) WireLen() int { return 12 }

// CloneOption implements Option.
func (o *FastcloseOption) CloneOption() Option { c := *o; return &c }

// String implements Option.
func (o *FastcloseOption) String() string { return fmt.Sprintf("fastclose[k=%x]", o.ReceiverKey) }

// OptionsWireLen returns the total encoded size of a set of options including
// the padding required to reach a 4-byte boundary.
func OptionsWireLen(opts []Option) int {
	n := 0
	for _, o := range opts {
		n += o.WireLen()
	}
	if rem := n % 4; rem != 0 {
		n += 4 - rem
	}
	return n
}

// MaxOptionSpace is the maximum TCP option space in bytes (header length is a
// 4-bit word count, so 60-byte header minus the fixed 20 bytes).
const MaxOptionSpace = 40

// FitsOptionSpace reports whether the options fit the 40-byte TCP option
// space. Callers must check this before emitting a segment; the encoder
// rejects oversized option sets.
func FitsOptionSpace(opts []Option) bool { return OptionsWireLen(opts) <= MaxOptionSpace }

// SortSACKBlocks orders SACK blocks by left edge (ascending); convenient for
// deterministic encoding and tests.
func SortSACKBlocks(blocks []SACKBlock) {
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Left.LessThan(blocks[j].Left) })
}
