package packet

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// fuzzSeedSegments returns representative segments whose encodings seed the
// fuzz corpora.
func fuzzSeedSegments() []*Segment {
	src := Endpoint{Addr: MakeAddr(10, 0, 0, 1), Port: 43210}
	dst := Endpoint{Addr: MakeAddr(10, 0, 1, 2), Port: 80}
	return []*Segment{
		{Src: src, Dst: dst, Flags: FlagSYN, Options: []Option{
			&MSSOption{MSS: 1460},
			&SACKPermittedOption{},
			&WindowScaleOption{Shift: 7},
			&MPCapableOption{SenderKey: 0x1122334455667788},
		}},
		{Src: src, Dst: dst, Seq: 100, Ack: 200, Flags: FlagACK | FlagPSH, Window: 4000, Options: []Option{
			&TimestampsOption{Val: 1, Echo: 2},
			&DSSOption{HasDataACK: true, DataACK: 7, HasMapping: true, DataSeq: 9, SubflowOffset: 11, Length: 4, HasChecksum: true, Checksum: 0xbeef},
		}, Payload: []byte("data")},
		{Src: src, Dst: dst, Flags: FlagACK, Options: []Option{
			&MPJoinOption{Phase: JoinSYNACK, AddrID: 4, SenderHMAC: []byte{1, 2, 3, 4, 5, 6, 7, 8}, SenderNonce: 7},
			&SACKOption{Blocks: []SACKBlock{{Left: 10, Right: 20}, {Right: 40, Left: 30}}},
		}},
		{Src: src, Dst: dst, Flags: FlagACK, Options: []Option{
			&AddAddrOption{AddrID: 2, Addr: MakeAddr(192, 168, 1, 7), Port: 8080},
			&RemoveAddrOption{AddrIDs: []uint8{2, 3}},
			&MPPrioOption{AddrID: 9, Backup: true},
			&FastcloseOption{ReceiverKey: 42},
		}},
		// The wire forms the adversarial middleboxes produce. A DPI-stripped
		// SYN keeps its TCP options but has lost MP_CAPABLE entirely...
		{Src: src, Dst: dst, Flags: FlagSYN, Options: []Option{
			&MSSOption{MSS: 1460},
			&SACKPermittedOption{},
			&WindowScaleOption{Shift: 7},
		}},
		// ...a mid-stream stripped data segment carries unmapped payload with
		// no DSS (the passive opener's first-option-less-segment case)...
		{Src: src, Dst: dst, Seq: 300, Ack: 400, Flags: FlagACK | FlagPSH, Window: 4000, Options: []Option{
			&TimestampsOption{Val: 3, Echo: 4},
		}, Payload: []byte("stripped")},
		// ...and the RST injector forges bare RST|ACKs with no options at all.
		{Src: src, Dst: dst, Seq: 500, Ack: 600, Flags: FlagRST | FlagACK},
	}
}

// FuzzDecode feeds arbitrary bytes to the wire decoder: Decode must never
// panic, and whatever it accepts must survive a Clone and a re-encode
// attempt without crashing.
func FuzzDecode(f *testing.F) {
	for _, seg := range fuzzSeedSegments() {
		wire, err := Encode(seg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), wire...))
		ReleaseWire(wire)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 60))

	src, dst := MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 1, 2)
	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := Decode(src, dst, data)
		if err != nil {
			if seg != nil {
				t.Fatal("Decode returned both a segment and an error")
			}
			return
		}
		// The accepted segment must be internally coherent enough for the
		// rest of the stack: cloning and re-encoding exercise every option.
		cl := seg.Clone()
		if wire, err := Encode(cl); err == nil {
			ReleaseWire(wire)
		} else if !errors.Is(err, ErrOptionSpace) {
			t.Fatalf("re-encode of decoded segment failed: %v", err)
		}
		cl.Release()
		seg.Release()
	})
}

// FuzzEncodeDecodeRoundTrip checks that Encode∘Decode is the identity on
// everything the decoder accepts: decode arbitrary bytes, re-encode the
// result and decode again — headers, payload and every option must match
// field for field. (The only legal re-encode failure is option-space
// overflow: the decoder accepts 4-byte DSS sequence-number forms that our
// canonical encoder widens to 8 bytes.)
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	for _, seg := range fuzzSeedSegments() {
		wire, err := Encode(seg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), wire...))
		ReleaseWire(wire)
	}

	src, dst := MakeAddr(10, 0, 0, 1), MakeAddr(10, 0, 1, 2)
	f.Fuzz(func(t *testing.T, data []byte) {
		first, err := Decode(src, dst, data)
		if err != nil {
			return
		}
		defer first.Release()
		wire, err := Encode(first)
		if err != nil {
			if errors.Is(err, ErrOptionSpace) {
				return
			}
			t.Fatalf("encode of decoded segment failed: %v", err)
		}
		defer ReleaseWire(wire)
		if !VerifyTCPChecksum(first.Src, first.Dst, wire) {
			t.Fatal("freshly encoded segment fails checksum verification")
		}
		second, err := Decode(src, dst, wire)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		defer second.Release()

		if first.Src != second.Src || first.Dst != second.Dst ||
			first.Seq != second.Seq || first.Ack != second.Ack ||
			first.Flags != second.Flags || first.Window != second.Window {
			t.Fatalf("header mismatch:\n first %v\nsecond %v", first, second)
		}
		if !bytes.Equal(first.Payload, second.Payload) {
			t.Fatalf("payload mismatch: %x vs %x", first.Payload, second.Payload)
		}
		if len(first.Options) != len(second.Options) {
			t.Fatalf("option count mismatch: %d vs %d\n first %v\nsecond %v",
				len(first.Options), len(second.Options), first, second)
		}
		for i := range first.Options {
			if !reflect.DeepEqual(first.Options[i], second.Options[i]) {
				t.Fatalf("option %d mismatch:\n first %#v\nsecond %#v",
					i, first.Options[i], second.Options[i])
			}
		}
	})
}
