// Package packet models TCP segments and MPTCP options.
//
// Segments are carried through the emulated network as structured values, but
// the package also implements the full RFC 793 / RFC 6824 wire format
// (Encode/Decode) so that codec behaviour — option space limits, padding,
// checksums — is exercised for real. Middlebox models operate on Segment
// values exactly the way on-path boxes operate on the wire representation.
package packet

import (
	"fmt"
	"strings"
	"time"

	"mptcpgo/internal/pool"
)

// SeqNum is a 32-bit TCP sequence number with wrap-around comparison
// semantics.
type SeqNum uint32

// Add returns the sequence number advanced by n bytes (mod 2^32).
func (s SeqNum) Add(n uint32) SeqNum { return s + SeqNum(n) }

// LessThan reports whether s precedes t in sequence space.
func (s SeqNum) LessThan(t SeqNum) bool { return int32(t-s) > 0 }

// LessThanEq reports whether s precedes or equals t.
func (s SeqNum) LessThanEq(t SeqNum) bool { return s == t || s.LessThan(t) }

// InRange reports whether s lies in the half-open interval [lo, hi).
func (s SeqNum) InRange(lo, hi SeqNum) bool {
	return lo.LessThanEq(s) && s.LessThan(hi)
}

// DiffFrom returns the signed distance s-t in sequence space.
func (s SeqNum) DiffFrom(t SeqNum) int32 { return int32(s - t) }

// DataSeq is a 64-bit MPTCP data-level sequence number. The connection-level
// sequence space is 64 bits wide; the DSS option may carry either the full 64
// bits or the lower 32.
type DataSeq uint64

// Flags is the set of TCP header flags.
type Flags uint8

// TCP header flags.
const (
	FlagFIN Flags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// Has reports whether all flags in f are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// String renders flags in tcpdump-like notation.
func (f Flags) String() string {
	var b strings.Builder
	add := func(mask Flags, s string) {
		if f&mask != 0 {
			b.WriteString(s)
		}
	}
	add(FlagSYN, "S")
	add(FlagFIN, "F")
	add(FlagRST, "R")
	add(FlagPSH, "P")
	add(FlagACK, ".")
	add(FlagURG, "U")
	add(FlagECE, "E")
	add(FlagCWR, "W")
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// Addr is an IPv4-style host address used by the emulated network.
type Addr uint32

// MakeAddr builds an address from dotted-quad components.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Endpoint is an (address, port) pair.
type Endpoint struct {
	Addr Addr
	Port uint16
}

// String renders the endpoint as addr:port.
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// FourTuple identifies a subflow on the wire.
type FourTuple struct {
	Src Endpoint
	Dst Endpoint
}

// Reverse returns the tuple seen from the other direction.
func (t FourTuple) Reverse() FourTuple { return FourTuple{Src: t.Dst, Dst: t.Src} }

// String renders the tuple as src->dst.
func (t FourTuple) String() string { return fmt.Sprintf("%s->%s", t.Src, t.Dst) }

// Segment is a TCP segment as it travels through the emulated network.
type Segment struct {
	Src Endpoint
	Dst Endpoint

	Seq    SeqNum
	Ack    SeqNum
	Flags  Flags
	Window uint16

	// Options carries TCP options. Middleboxes may remove or alter entries.
	Options []Option

	// Payload is the segment's application data. Slices are never shared
	// between in-flight copies; use Clone when duplicating.
	Payload []byte

	// SentAt records the simulation time at which the segment was last
	// transmitted by the sending host (used for RTT sampling and tracing).
	SentAt time.Duration

	// Ordinal is a per-link monotonically increasing identifier assigned at
	// enqueue time, useful for traces and deterministic tie-breaking.
	Ordinal uint64

	// ownsPayload marks Payload as a pool-owned buffer that Release will
	// recycle (see AttachPayload / DetachPayload in pool.go).
	ownsPayload bool
	// released guards against double-release of pooled segments.
	released bool

	// optArena is the segment's inline option storage (see arena.go). It is
	// created on first use and retained across pool reuses; Release resets
	// it, which invalidates every option pointer handed out for this
	// segment's lifetime.
	optArena *optionArena
}

// Tuple returns the segment's four-tuple.
func (s *Segment) Tuple() FourTuple { return FourTuple{Src: s.Src, Dst: s.Dst} }

// Len returns the payload length in bytes.
func (s *Segment) Len() int { return len(s.Payload) }

// SeqLen returns the amount of sequence space the segment occupies
// (payload bytes plus one for SYN and one for FIN).
func (s *Segment) SeqLen() uint32 {
	n := uint32(len(s.Payload))
	if s.Flags.Has(FlagSYN) {
		n++
	}
	if s.Flags.Has(FlagFIN) {
		n++
	}
	return n
}

// EndSeq returns the sequence number just past the segment's data.
func (s *Segment) EndSeq() SeqNum { return s.Seq.Add(s.SeqLen()) }

// Clone returns a deep copy of the segment, including options and payload.
// The copy is a pooled segment with a pool-owned payload buffer; releasing
// it recycles both (clones that are retained forever simply never return to
// the pool).
func (s *Segment) Clone() *Segment {
	c := s.CloneHeader()
	if len(s.Payload) > 0 {
		c.AttachPayload(pool.Copy(s.Payload))
	}
	return c
}

// CloneHeader returns a pooled copy of the segment with cloned options and
// no payload. Middleboxes that resegment use it to duplicate headers without
// copying payload bytes they are about to replace.
func (s *Segment) CloneHeader() *Segment {
	c := NewSegment()
	c.Src, c.Dst = s.Src, s.Dst
	c.Seq, c.Ack = s.Seq, s.Ack
	c.Flags, c.Window = s.Flags, s.Window
	c.SentAt, c.Ordinal = s.SentAt, s.Ordinal
	for _, o := range s.Options {
		c.AppendOptionCopy(o)
	}
	return c
}

// FindOption returns the first option with the given kind, or nil.
func (s *Segment) FindOption(kind OptionKind) Option {
	for _, o := range s.Options {
		if o.Kind() == kind {
			return o
		}
	}
	return nil
}

// MPTCPOption returns the first MPTCP option with the given subtype, or nil.
func (s *Segment) MPTCPOption(sub MPTCPSubtype) Option {
	for _, o := range s.Options {
		if o.Kind() == OptMPTCP && o.Subtype() == sub {
			return o
		}
	}
	return nil
}

// RemoveOptions deletes all options for which drop returns true and reports
// how many were removed. Middlebox models use this to strip options.
func (s *Segment) RemoveOptions(drop func(Option) bool) int {
	kept := s.Options[:0]
	removed := 0
	for _, o := range s.Options {
		if drop(o) {
			removed++
			continue
		}
		kept = append(kept, o)
	}
	s.Options = kept
	return removed
}

// HasMPTCP reports whether the segment carries any MPTCP option.
func (s *Segment) HasMPTCP() bool {
	return s.FindOption(OptMPTCP) != nil
}

// String renders a compact single-line description for traces and test
// failures.
func (s *Segment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s seq=%d ack=%d win=%d len=%d", s.Tuple(), s.Flags, s.Seq, s.Ack, s.Window, len(s.Payload))
	for _, o := range s.Options {
		fmt.Fprintf(&b, " %s", o)
	}
	return b.String()
}
