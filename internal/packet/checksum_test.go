package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestChecksumKnownValues(t *testing.T) {
	// RFC 1071 example: 0x0001, 0xf203, 0xf4f5, 0xf6f7 sums to 0xddf2 before
	// complement.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("Checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
	if Checksum(nil) != 0xffff {
		t.Fatalf("checksum of empty data should be 0xffff")
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xab}) != ^uint16(0xab00) {
		t.Fatal("odd-length data must be padded with a zero byte")
	}
}

func TestPartialChecksumComposition(t *testing.T) {
	// Summing in pieces must equal summing at once (this is what lets the
	// payload be checksummed a single time and reused for the TCP and DSS
	// checksums, §3.3.6).
	f := func(a, b []byte) bool {
		whole := FoldChecksum(PartialChecksum(0, append(append([]byte(nil), a...), b...)))
		split := FoldChecksum(PartialChecksum(PartialChecksum(0, a), b))
		// Padding matters: only compare when the first part has even length.
		if len(a)%2 != 0 {
			return true
		}
		return whole == split
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestDSSChecksumDetectsModification(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	sum := DSSChecksum(1000, 20, uint16(len(payload)), payload)
	opt := &DSSOption{HasMapping: true, DataSeq: 1000, SubflowOffset: 20, Length: uint16(len(payload)), HasChecksum: true, Checksum: sum}
	if !VerifyDSSChecksum(opt, payload) {
		t.Fatal("unmodified payload must verify")
	}
	mod := append([]byte(nil), payload...)
	mod[3] ^= 0x20
	if VerifyDSSChecksum(opt, mod) {
		t.Fatal("modified payload must fail the DSS checksum")
	}
	// Length changes (ALG rewrites) are also detected.
	if VerifyDSSChecksum(opt, payload[:len(payload)-2]) {
		t.Fatal("truncated payload must fail the DSS checksum")
	}
}

func TestDSSChecksumQuick(t *testing.T) {
	f := func(seq uint64, off uint32, payload []byte) bool {
		if len(payload) > 65535 {
			payload = payload[:65535]
		}
		sum := DSSChecksum(DataSeq(seq), off, uint16(len(payload)), payload)
		opt := &DSSOption{HasMapping: true, DataSeq: DataSeq(seq), SubflowOffset: off, Length: uint16(len(payload)), HasChecksum: true, Checksum: sum}
		if !VerifyDSSChecksum(opt, payload) {
			return false
		}
		if len(payload) > 0 {
			mod := append([]byte(nil), payload...)
			mod[0] ^= 0x01
			if VerifyDSSChecksum(opt, mod) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPChecksumIncludesPseudoHeader(t *testing.T) {
	src := Endpoint{Addr: MakeAddr(10, 0, 0, 1), Port: 1}
	dst := Endpoint{Addr: MakeAddr(10, 0, 0, 2), Port: 2}
	hdr := make([]byte, 20)
	payload := []byte("data")
	a := TCPChecksum(src, dst, hdr, payload)
	otherSrc := Endpoint{Addr: MakeAddr(10, 0, 0, 3), Port: 1}
	b := TCPChecksum(otherSrc, dst, hdr, payload)
	if a == b {
		t.Fatal("checksum must depend on the pseudo-header addresses")
	}
}
