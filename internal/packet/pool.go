package packet

import (
	"sync"

	"mptcpgo/internal/pool"
)

// Segment recycling. Every data segment the emulator moves costs, without
// recycling, at least two garbage-collected allocations (the Segment struct
// and its payload buffer) at every hop that copies it. The pool below, with
// the explicit Release calls at the segment sinks (link drops, middlebox
// consumption, post-dispatch on the receiving host), removes both from the
// steady-state hot path.
//
// Ownership discipline (documented in DESIGN.md): a Segment is owned by
// exactly one component at a time. The sender creates it, Interface.Send
// passes it to the link, the link either drops it (releasing it) or delivers
// it to the path; middlebox elements own the segments passed to Process and
// must Release any segment they consume rather than forward; the receiving
// host releases the segment after HandleSegment returns. Nothing may retain
// a Segment — or any slice of its Payload — past its ownership window; use
// Clone (or copy the bytes out) to keep data.

var segPool = sync.Pool{New: func() any { return new(Segment) }}

// NewSegment returns a zeroed Segment from the pool. The segment's Options
// slice retains recycled capacity; all other fields are zero.
func NewSegment() *Segment {
	s := segPool.Get().(*Segment)
	s.released = false
	return s
}

// AttachPayload sets the segment payload to buf and records that buf is a
// pool-owned buffer: Release will recycle it. buf must come from pool.Bytes
// or pool.Copy and ownership transfers to the segment.
func (s *Segment) AttachPayload(buf []byte) {
	s.Payload = buf
	s.ownsPayload = true
}

// DetachPayload transfers ownership of the payload buffer to the caller:
// Release will no longer recycle it.
func (s *Segment) DetachPayload() []byte {
	b := s.Payload
	s.Payload = nil
	s.ownsPayload = false
	return b
}

// Release returns the segment (and its payload buffer, when pool-owned) to
// the pools. The caller must not touch the segment afterwards. Releasing a
// segment twice panics: it would put the same pointer into the pool twice
// and silently cross-wire two future segments.
func (s *Segment) Release() {
	if s == nil {
		return
	}
	if s.released {
		panic("packet: Segment released twice")
	}
	if s.ownsPayload {
		pool.Recycle(s.Payload)
	}
	opts := s.Options[:0]
	arena := s.optArena
	if arena != nil {
		arena.reset()
	}
	*s = Segment{Options: opts, optArena: arena, released: true}
	segPool.Put(s)
}
