package capacity

import (
	"reflect"
	"testing"
)

// TestMaxMinHandComputed pins the allocator to hand-computed water-filling
// results: a bug in the sort order, the share arithmetic or the remaining
// bookkeeping moves whole epochs of fleet capacity, so the cases are exact.
func TestMaxMinHandComputed(t *testing.T) {
	cases := []struct {
		name     string
		capacity int64
		demands  []int64
		weights  []float64
		want     []int64
	}{
		{
			// Three shards, equal weights: the light shard keeps its demand,
			// the two heavy ones split the rest at the same water level.
			name: "threeShardsEqualWeights", capacity: 12,
			demands: []int64{2, 5, 9}, weights: nil,
			want: []int64{2, 5, 5},
		},
		{
			// The weighted case from the coupler docs: shard 0 carries twice
			// the weight, the small shard is satisfied first, and the two
			// bottlenecked shards divide the remainder 2:1.
			name: "threeShardsWeighted", capacity: 12_000_000,
			demands: []int64{9_000_000, 9_000_000, 2_000_000}, weights: []float64{2, 1, 1},
			want: []int64{6_666_666, 3_333_334, 2_000_000},
		},
		{
			name: "underloadedEveryoneSatisfied", capacity: 100,
			demands: []int64{10, 20, 30}, weights: nil,
			want: []int64{10, 20, 30},
		},
		{
			name: "zeroCapacity", capacity: 0,
			demands: []int64{5, 5}, weights: nil,
			want: []int64{0, 0},
		},
		{
			name: "negativeDemandClamped", capacity: 10,
			demands: []int64{-3, 4}, weights: nil,
			want: []int64{0, 4},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MaxMin(tc.capacity, tc.demands, tc.weights)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("MaxMin(%d, %v, %v) = %v, want %v",
					tc.capacity, tc.demands, tc.weights, got, tc.want)
			}
			var sum int64
			for _, a := range got {
				sum += a
			}
			if sum > tc.capacity {
				t.Fatalf("allocation %v oversubscribes capacity %d", got, tc.capacity)
			}
		})
	}
}

func TestMaxMinDeterministicTieBreak(t *testing.T) {
	// Identical demand/weight ratios must resolve in index order, every time:
	// integer water-filling hands the rounding slack to the last claimant in
	// the (stable) order, so [3 3 4] exactly — never a permutation of it.
	for trial := 0; trial < 10; trial++ {
		got := MaxMin(10, []int64{7, 7, 7}, nil)
		if want := []int64{3, 3, 4}; !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: MaxMin = %v, want %v", trial, got, want)
		}
	}
}

func TestSpreadHeadroom(t *testing.T) {
	got := SpreadHeadroom(100, []int64{10, 20, 30}, nil)
	// Leftover 40 splits 13/13/13 with the integer residue on claimant 0.
	if want := []int64{24, 33, 43}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SpreadHeadroom = %v, want %v", got, want)
	}
	var sum int64
	for _, a := range got {
		sum += a
	}
	if sum != 100 {
		t.Fatalf("headroom spread sums to %d, want the full capacity 100", sum)
	}
}

func TestSpreadHeadroomByAllocFollowsDemand(t *testing.T) {
	// The only active claimant absorbs all headroom; idles stay at zero.
	got := SpreadHeadroomByAlloc(100, []int64{0, 50, 0}, nil)
	if want := []int64{0, 100, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SpreadHeadroomByAlloc = %v, want %v", got, want)
	}
	// Fully idle windows fall back to the weighted spread.
	got = SpreadHeadroomByAlloc(80, []int64{0, 0}, []float64{1, 3})
	if want := []int64{20, 60}; !reflect.DeepEqual(got, want) {
		t.Fatalf("idle fallback = %v, want %v", got, want)
	}
}

func TestAdmitIdleFloorsFromLeftover(t *testing.T) {
	// One active claimant at 10 of 80, two idle. The active's probe target is
	// 20; the idles each get their fair-share floor (80/3 = 26) out of the
	// leftover; the remaining headroom follows the grants. The result must
	// use the whole capacity and give every idle claimant at least its floor.
	got := Admit(80, []int64{0, 10, 0}, nil)
	var sum int64
	for _, a := range got {
		sum += a
	}
	if sum != 80 {
		t.Fatalf("Admit = %v sums to %d, want the full 80", got, sum)
	}
	if got[0] < 26 || got[2] < 26 {
		t.Fatalf("Admit = %v: idle claimants got less than their 26-unit floor", got)
	}
	if got[1] < 20 {
		t.Fatalf("Admit = %v: active claimant got less than its doubled demand", got)
	}
}

func TestAdmitOverloadIsWeightedMaxMin(t *testing.T) {
	// Every claimant hungry: idle floors and headroom vanish and Admit
	// degenerates to weighted max-min over the doubled demands.
	demands := []int64{9_000_000, 9_000_000, 9_000_000}
	got := Admit(12_000_000, demands, []float64{2, 1, 1})
	want := MaxMin(12_000_000, []int64{18_000_000, 18_000_000, 18_000_000}, []float64{2, 1, 1})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Admit = %v, want the pure weighted max-min %v", got, want)
	}
}

func TestAdmitAllIdleIsWeightSpread(t *testing.T) {
	got := Admit(80, []int64{0, 0}, []float64{1, 3})
	if want := []int64{20, 60}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Admit = %v, want the weighted spread %v", got, want)
	}
}

func TestSmoothDemand(t *testing.T) {
	cases := []struct{ prev, measured, want int64 }{
		{0, 5_000, 5_000},     // cold start takes the measurement
		{8_000, 9_000, 9_000}, // growth takes the measurement
		{8_000, 0, 4_000},     // a stall window decays by half, not to zero
		{8_000, 3_000, 4_000}, // a dip below half also holds the decayed peak
		{8_000, 4_500, 4_500}, // a dip above half is believed
		{1, 0, 0},             // decay does reach zero for a finished claimant
	}
	for _, tc := range cases {
		if got := SmoothDemand(tc.prev, tc.measured); got != tc.want {
			t.Errorf("SmoothDemand(%d, %d) = %d, want %d", tc.prev, tc.measured, got, tc.want)
		}
	}
}

func TestTrickleFloor(t *testing.T) {
	// 100ms epochs: two 1500-byte segments per window = 240 kbps.
	if got := TrickleFloor(10_000_000, 0.1, 1, 32); got != 240_000 {
		t.Errorf("TrickleFloor = %d, want 240000", got)
	}
	// The floor never exceeds the claimant's weighted fair share.
	if got := TrickleFloor(320_000, 0.1, 1, 32); got != 10_000 {
		t.Errorf("fair-share-bounded floor = %d, want 10000", got)
	}
}

// TestAdmitConverges drives the measured-demand feedback loop the way an
// epoch sequence does: each round the hungry claimant "offers" exactly what
// it was last admitted (the ack-clocked TCP behaviour that motivates the
// probe doubling). Raw max-min would pin the loop at its first allocation;
// Admit must walk a single hungry claimant up to essentially the whole
// resource, with the idle claimants holding only slack-funded floors.
func TestAdmitConverges(t *testing.T) {
	const capacity = 10_000_000
	measured := []int64{1_000, 0, 0} // one hungry claimant, two idle
	for round := 0; round < 16; round++ {
		alloc := Admit(capacity, measured, nil)
		measured = []int64{alloc[0], 0, 0} // hungry claimant fills its cap
	}
	if min := int64(capacity * 9 / 10); measured[0] < min {
		t.Fatalf("hungry claimant converged to %d bps, want >= %d", measured[0], min)
	}
}
