package capacity

import (
	"testing"
	"time"
)

func TestParseSharedLink(t *testing.T) {
	cases := []struct {
		spec string
		want SharedLink
	}{
		{"10mbps", SharedLink{Name: "core", RateBps: 10_000_000, Epoch: 100 * time.Millisecond}},
		{"core:10mbps", SharedLink{Name: "core", RateBps: 10_000_000, Epoch: 100 * time.Millisecond}},
		{"egress:2.5gbps:50ms", SharedLink{Name: "egress", RateBps: 2_500_000_000, Epoch: 50 * time.Millisecond}},
		// A leading token that parses as a rate is the rate: the second field
		// is the epoch, and the name stays the default.
		{"10mbps:250ms", SharedLink{Name: "core", RateBps: 10_000_000, Epoch: 250 * time.Millisecond}},
		{"800000", SharedLink{Name: "core", RateBps: 800_000, Epoch: 100 * time.Millisecond}},
		{"spine:400kbps", SharedLink{Name: "spine", RateBps: 400_000, Epoch: 100 * time.Millisecond}},
		{"uplink:1g:1s", SharedLink{Name: "uplink", RateBps: 1_000_000_000, Epoch: time.Second}},
	}
	for _, tc := range cases {
		got, err := ParseSharedLink(tc.spec)
		if err != nil {
			t.Errorf("ParseSharedLink(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSharedLink(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestParseSharedLinkRejects(t *testing.T) {
	for _, spec := range []string{
		"",                // no rate
		"a:b:c:d",         // too many fields
		"core:xyz",        // unparseable rate
		"0mbps",           // zero rate
		"-5mbps",          // negative rate
		"core:10mbps:0s",  // epoch below the 1ms floor
		"core:10mbps:abc", // unparseable epoch
		"9999999gbps",     // rate above the sanity ceiling
		"core:10mbps:50ms:x",
	} {
		if l, err := ParseSharedLink(spec); err == nil {
			t.Errorf("ParseSharedLink(%q) = %+v, want error", spec, l)
		}
	}
}

func TestSharedLinkStringRoundTrip(t *testing.T) {
	for _, l := range []SharedLink{
		{Name: "core", RateBps: 10_000_000, Epoch: 100 * time.Millisecond},
		{Name: "egress", RateBps: 2_500_000_000, Epoch: 50 * time.Millisecond},
		{Name: "x", RateBps: 12_345, Epoch: time.Second},
	} {
		back, err := ParseSharedLink(l.String())
		if err != nil {
			t.Fatalf("round trip of %v: %v", l, err)
		}
		if back != l {
			t.Fatalf("round trip of %v came back as %v", l, back)
		}
	}
}

func TestCouplerAllocateDeterministic(t *testing.T) {
	mk := func() *Coupler {
		c, err := NewCoupler([]SharedLink{{Name: "core", RateBps: 12_000_000}}, []float64{2, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	run := func(c *Coupler) [][]int64 {
		// Reports arrive in arbitrary shard order — the ledger is indexed, so
		// order must not matter.
		c.Report(2, []uint64{25_000}, []uint64{25_000}) // 2 Mbps over 100ms
		c.Report(0, []uint64{112_500}, []uint64{100_000})
		c.Report(1, []uint64{112_500}, []uint64{100_000})
		return c.Allocate()
	}
	a, b := run(mk()), run(mk())
	for s := range a {
		for j := range a[s] {
			if a[s][j] != b[s][j] {
				t.Fatalf("allocation differs across identical runs: %v vs %v", a, b)
			}
		}
	}
	var sum int64
	for s := range a {
		sum += a[s][0]
	}
	if sum > 12_000_000 {
		t.Fatalf("allocations %v oversubscribe the 12mbps link", a)
	}
	c := mk()
	run(c)
	if got := len(c.Trace()); got != 1 {
		t.Fatalf("trace has %d records after one epoch, want 1", got)
	}
	rec := c.Trace()[0]
	if rec.OfferedBytes != 250_000 || rec.Epoch != 0 || rec.Link != 0 {
		t.Fatalf("trace record %+v, want epoch 0, link 0, 250000 offered bytes", rec)
	}
}

func TestNewCouplerRejects(t *testing.T) {
	if _, err := NewCoupler(nil, []float64{1}); err == nil {
		t.Error("no links: want error")
	}
	if _, err := NewCoupler([]SharedLink{{Name: "a", RateBps: 1}}, nil); err == nil {
		t.Error("no shards: want error")
	}
	dup := []SharedLink{{Name: "a", RateBps: 1}, {Name: "a", RateBps: 2}}
	if _, err := NewCoupler(dup, []float64{1}); err == nil {
		t.Error("duplicate names: want error")
	}
	mixed := []SharedLink{
		{Name: "a", RateBps: 1, Epoch: 50 * time.Millisecond},
		{Name: "b", RateBps: 1, Epoch: 100 * time.Millisecond},
	}
	if _, err := NewCoupler(mixed, []float64{1}); err == nil {
		t.Error("mixed epochs: want error")
	}
}

// FuzzParseSharedLink checks the parser never panics and that every accepted
// spec survives validation and canonical reserialization.
func FuzzParseSharedLink(f *testing.F) {
	for _, seed := range []string{
		"10mbps", "core:10mbps", "egress:2.5gbps:50ms", "10mbps:250ms",
		"800000", "uplink:1g:1s", "spine:400kbps", "", "a:b:c:d", "0mbps",
		"core:10mbps:0s", ":::", "1e3", "-1", "9999999gbps", "x y:5m",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		l, err := ParseSharedLink(spec)
		if err != nil {
			return
		}
		if verr := l.Validate(); verr != nil {
			t.Fatalf("ParseSharedLink(%q) accepted invalid link %+v: %v", spec, l, verr)
		}
		back, err := ParseSharedLink(l.String())
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", l.String(), spec, err)
		}
		if back != l {
			t.Fatalf("round trip of %q: %+v -> %+v", spec, l, back)
		}
	})
}
