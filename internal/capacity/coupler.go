package capacity

import (
	"fmt"
	"time"

	"mptcpgo/internal/telemetry"
)

// EpochRecord is one shared link's ledger entry for one completed epoch: the
// demand every shard reported for the window and what the allocator admitted
// for the next one. The fleet engine merges these per-epoch capacity traces
// into the scenario result.
type EpochRecord struct {
	// Epoch is the completed window's index (0-based).
	Epoch int
	// Link indexes the coupler's shared-link list.
	Link int
	// OfferedBytes sums the bytes all shards presented to the resource's
	// tagged directions during the window (drops included — demand, not
	// goodput). SentBytes is what the tagged directions actually serialized.
	OfferedBytes uint64
	SentBytes    uint64
	// Bottlenecked counts the shards whose demand exceeded their next-window
	// allocation (before headroom).
	Bottlenecked int
	// MinAllocBps and MaxAllocBps bound the next-window per-shard admitted
	// rates (after headroom).
	MinAllocBps, MaxAllocBps int64
}

// Coupler is the fleet-global side of the capacity exchange: a per-link,
// per-shard ledger of offered bytes, and the deterministic allocator that
// turns one epoch's ledger into the next epoch's admitted rates.
//
// Concurrency contract (the "epoch barrier"): Report writes only the
// reporting shard's own slots, so any number of shard workers may report one
// epoch concurrently; Allocate must be called from a single goroutine after
// every shard's Report for the window has completed (the fleet engine's
// worker-pool join provides the happens-before edge). Under that contract the
// allocation for epoch k is a pure function of (k, shard weights, offered
// bytes), never of worker interleaving.
type Coupler struct {
	// OnEpoch, when non-nil, is invoked from Allocate (single-goroutine, at
	// the epoch barrier) with each completed window's record, in (epoch,
	// link) order. The fleet engine uses it to feed the flight recorder.
	OnEpoch func(EpochRecord)

	links []SharedLink
	epoch time.Duration
	// weights[shard] is the shard's allocation weight on every link — the sum
	// of its tagged members' weights, computed once at construction from the
	// shard partition alone.
	weights []float64

	offered [][]uint64 // [link][shard] bytes offered this window
	sent    [][]uint64 // [link][shard] bytes serialized this window

	// Telemetry instruments (nil when detached): the allocate phase span plus
	// epoch/congestion counters. Touched only from Allocate's single
	// goroutine; counters are atomic anyway.
	prof           *telemetry.Profiler
	epochCtr       *telemetry.Counter
	congestedCtr   *telemetry.Counter
	admittedMinBps *telemetry.Gauge
	admittedMaxBps *telemetry.Gauge
	// demand[link][shard] is the peak-hold demand estimate (bits per second)
	// carried across windows, so one all-members-stalled window does not zero
	// a shard's claim (see SmoothDemand).
	demand [][]int64
	epochs int
	trace  []EpochRecord
}

// NewCoupler builds a coupler for the given shared links and per-shard
// weights. All links must agree on the epoch length (a single barrier cadence
// drives the whole fleet); zero-epoch specs inherit DefaultEpoch first.
func NewCoupler(links []SharedLink, shardWeights []float64) (*Coupler, error) {
	if len(links) == 0 {
		return nil, fmt.Errorf("capacity: coupler needs at least one shared link")
	}
	if len(shardWeights) == 0 {
		return nil, fmt.Errorf("capacity: coupler needs at least one shard")
	}
	ls := make([]SharedLink, len(links))
	seen := make(map[string]bool, len(links))
	for i, l := range links {
		l = l.withDefaults()
		if err := l.Validate(); err != nil {
			return nil, err
		}
		if seen[l.Name] {
			return nil, fmt.Errorf("capacity: duplicate shared link %q", l.Name)
		}
		seen[l.Name] = true
		if i > 0 && l.Epoch != ls[0].Epoch {
			return nil, fmt.Errorf("capacity: shared links %q and %q disagree on epoch (%v vs %v)",
				ls[0].Name, l.Name, ls[0].Epoch, l.Epoch)
		}
		ls[i] = l
	}
	c := &Coupler{
		links:   ls,
		epoch:   ls[0].Epoch,
		weights: append([]float64(nil), shardWeights...),
		offered: make([][]uint64, len(ls)),
		sent:    make([][]uint64, len(ls)),
		demand:  make([][]int64, len(ls)),
	}
	for j := range ls {
		c.offered[j] = make([]uint64, len(shardWeights))
		c.sent[j] = make([]uint64, len(shardWeights))
		c.demand[j] = make([]int64, len(shardWeights))
	}
	return c, nil
}

// Attach instruments the coupler with a telemetry registry and profiler:
// Allocate runs under an "allocate" span and maintains epoch/congestion
// counters plus the admitted-rate spread gauges. Attaching never changes the
// allocation sequence.
func (c *Coupler) Attach(reg *telemetry.Registry, prof *telemetry.Profiler) {
	c.prof = prof
	c.epochCtr = reg.Counter("capacity_epochs_total", "completed capacity-exchange windows")
	c.congestedCtr = reg.Counter("capacity_congested_epochs_total", "windows where at least one shard's demand exceeded its allocation")
	c.admittedMinBps = reg.Gauge("capacity_admitted_min_bps", "smallest per-shard admitted rate of the last window")
	c.admittedMaxBps = reg.Gauge("capacity_admitted_max_bps", "largest per-shard admitted rate of the last window")
}

// Links returns the coupler's shared links in declaration order.
func (c *Coupler) Links() []SharedLink { return c.links }

// Epoch returns the capacity-exchange window length.
func (c *Coupler) Epoch() time.Duration { return c.epoch }

// Shards returns the number of shards the coupler allocates across.
func (c *Coupler) Shards() int { return len(c.weights) }

// LinkIndex resolves a shared-link name, or -1.
func (c *Coupler) LinkIndex(name string) int {
	for i, l := range c.links {
		if l.Name == name {
			return i
		}
	}
	return -1
}

// Report records one shard's offered and serialized bytes per shared link for
// the current window. It writes only the shard's own ledger slots and is safe
// to call concurrently from distinct shards.
func (c *Coupler) Report(shard int, offered, sent []uint64) {
	for j := range c.links {
		c.offered[j][shard] = offered[j]
		c.sent[j][shard] = sent[j]
	}
}

// Initial returns the epoch-0 allocation, before any demand has been
// observed: every shard gets its weight-proportional share of each link. The
// shape is [shard][link] admitted bits per second, matching Allocate.
func (c *Coupler) Initial() [][]int64 {
	out := c.emptyAllocs()
	for j := range c.links {
		byShard := SpreadHeadroom(c.links[j].RateBps, make([]int64, len(c.weights)), c.weights)
		for s := range c.weights {
			out[s][j] = byShard[s]
		}
	}
	return out
}

// Allocate closes the current window: it folds each shard's reported bytes
// into its peak-hold demand estimate, runs the Admit rule per link
// (probe-doubled weighted max-min for active shards, leftover-funded fair
// floors for the rest, grant-proportional headroom — shards in index order),
// raises each shard to the trickle floor, appends the window's EpochRecords
// to the trace and resets the ledger. The result is [shard][link] admitted
// bits per second for the next window.
func (c *Coupler) Allocate() [][]int64 {
	span := c.prof.Start("allocate")
	defer span.End()
	out := c.emptyAllocs()
	epochSec := c.epoch.Seconds()
	wsum := 0.0
	for _, w := range c.weights {
		if w <= 0 {
			w = 1
		}
		wsum += w
	}
	for j, l := range c.links {
		var offeredSum, sentSum uint64
		demands := c.demand[j]
		for s, b := range c.offered[j] {
			demands[s] = SmoothDemand(demands[s], int64(float64(b)*8/epochSec))
			offeredSum += b
			sentSum += c.sent[j][s]
		}
		final := Admit(l.RateBps, demands, c.weights)
		for s := range final {
			w := 1.0
			if s < len(c.weights) && c.weights[s] > 0 {
				w = c.weights[s]
			}
			if f := TrickleFloor(l.RateBps, epochSec, w, wsum); final[s] < f {
				final[s] = f
			}
		}
		rec := EpochRecord{Epoch: c.epochs, Link: j, OfferedBytes: offeredSum, SentBytes: sentSum}
		for s := range final {
			if demands[s] > final[s] {
				rec.Bottlenecked++
			}
		}
		rec.MinAllocBps, rec.MaxAllocBps = final[0], final[0]
		for _, a := range final[1:] {
			if a < rec.MinAllocBps {
				rec.MinAllocBps = a
			}
			if a > rec.MaxAllocBps {
				rec.MaxAllocBps = a
			}
		}
		c.trace = append(c.trace, rec)
		if c.OnEpoch != nil {
			c.OnEpoch(rec)
		}
		if rec.Bottlenecked > 0 {
			c.congestedCtr.Add(1)
		}
		c.admittedMinBps.Set(float64(rec.MinAllocBps))
		c.admittedMaxBps.Set(float64(rec.MaxAllocBps))
		for s := range final {
			out[s][j] = final[s]
		}
		for s := range c.offered[j] {
			c.offered[j][s], c.sent[j][s] = 0, 0
		}
	}
	c.epochs++
	c.epochCtr.Add(1)
	return out
}

// Epochs returns the number of completed (allocated) windows.
func (c *Coupler) Epochs() int { return c.epochs }

// Trace returns the per-epoch capacity records in (epoch, link) order.
func (c *Coupler) Trace() []EpochRecord { return c.trace }

func (c *Coupler) emptyAllocs() [][]int64 {
	out := make([][]int64, len(c.weights))
	for s := range out {
		out[s] = make([]int64, len(c.links))
	}
	return out
}
