package capacity

import (
	"fmt"
	"os"

	"mptcpgo/internal/faults"
	"mptcpgo/internal/netem"
)

var capDebug = os.Getenv("CAPDEBUG") != ""

// memberLink is one tagged link direction owned by a shard: the directional
// link, its pre-coupling configuration (the restore point for every swap),
// the member's weight, and the byte counters at the last collection.
type memberLink struct {
	link        *netem.Link
	orig        netem.LinkConfig
	weight      float64
	lastOffered uint64
	lastSent    uint64
	// demandBps is the member's offered rate over the last collected window,
	// the demand signal for the shard-internal allocation.
	demandBps int64
}

// Meter is the shard-local side of the capacity exchange. It is built after
// the shard materializes its network, from the SharedAB/SharedBA tags on the
// shard's graph spec: for every coupler link it holds the member link
// directions that transit the resource. Each epoch the fleet engine calls
// Apply (cap the members to the shard's admitted rate), runs the window, and
// calls Collect (read back the members' offered/sent byte deltas).
//
// Apply subdivides the shard's admitted rate across its members with the same
// weighted max-min + headroom rule the coupler uses across shards, so the
// two-level allocation degenerates to the flat one when every shard holds one
// member. Caps land as link-config swaps through faults.CapRate — the rate
// squeeze transform — against the member's original configuration, so a
// member whose own rate is below its share keeps its own rate.
type Meter struct {
	c       *Coupler
	members [][]*memberLink // [coupler link index] -> tagged members, spec order
	offered []uint64        // scratch reused by Collect
	sent    []uint64
}

// NewMeter scans the graph spec's shared tags against the built network
// (spec.Links[i] corresponds to n.Paths[i]) and returns the shard's meter.
// weightOf supplies the member weight for spec link index i (nil = 1); both
// directions of a doubly-tagged link count as distinct members. Tags naming
// no coupler link are an error — a silently ignored tag would let a scenario
// believe a bottleneck is enforced when it is not.
func NewMeter(c *Coupler, n *netem.Network, spec netem.GraphSpec, weightOf func(i int) float64) (*Meter, error) {
	m := &Meter{
		c:       c,
		members: make([][]*memberLink, len(c.links)),
		offered: make([]uint64, len(c.links)),
		sent:    make([]uint64, len(c.links)),
	}
	add := func(tag string, l *netem.Link, i int) error {
		if tag == "" {
			return nil
		}
		j := c.LinkIndex(tag)
		if j < 0 {
			return fmt.Errorf("capacity: link %d tagged with unknown shared resource %q", i, tag)
		}
		w := 1.0
		if weightOf != nil {
			w = weightOf(i)
		}
		m.members[j] = append(m.members[j], &memberLink{link: l, orig: l.Config(), weight: w})
		return nil
	}
	for i, ls := range spec.Links {
		p := n.Paths[i]
		if err := add(ls.SharedAB, p.LinkAB(), i); err != nil {
			return nil, err
		}
		if err := add(ls.SharedBA, p.LinkBA(), i); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Members returns how many link directions the shard contributes to coupler
// link j.
func (m *Meter) Members(j int) int { return len(m.members[j]) }

// Weight sums the shard's member weights on coupler link j — the shard's
// allocation weight. Scenario builders use it to derive the coupler's
// per-shard weights from the same tags the meter will meter.
func (m *Meter) Weight(j int) float64 {
	var w float64
	for _, ml := range m.members[j] {
		w += ml.weight
	}
	return w
}

// Apply caps the shard's tagged members so their rates sum to the shard's
// admitted allocation: allocs[j] bits per second for coupler link j (the
// shard's row of Coupler.Allocate). Members split each allocation with the
// same Admit rule the coupler uses across shards; each member then runs at
// min(own configured rate, member share) until the next swap.
func (m *Meter) Apply(allocs []int64) {
	for j, members := range m.members {
		if len(members) == 0 {
			continue
		}
		demands := make([]int64, len(members))
		weights := make([]float64, len(members))
		for i, ml := range members {
			demands[i] = ml.demandBps
			weights[i] = ml.weight
		}
		shares := Admit(allocs[j], demands, weights)
		var wsum float64
		for _, ml := range members {
			wsum += ml.weight
		}
		for i, ml := range members {
			if f := TrickleFloor(allocs[j], m.c.epoch.Seconds(), ml.weight, wsum); shares[i] < f {
				shares[i] = f
			}
			ml.link.SetConfig(capLink(ml.orig, shares[i]))
		}
		if capDebug {
			fmt.Fprintf(os.Stderr, "CAPDBG apply link=%d alloc=%d demands=%v shares=%v\n", j, allocs[j], demands, shares)
		}
	}
}

// capLink derives a member's epoch configuration: the rate cap via
// faults.CapRate, plus a queue scaled down in proportion so the member keeps
// the same *milliseconds* of buffering it was provisioned with. Preserving
// the byte queue of a 250 ms buffer across a deep rate cap would turn it into
// seconds of bufferbloat — TCP then oscillates between queue-overflow bursts
// and retransmission stalls and never fills its admitted rate. A floor of a
// few full-size segments keeps slow-started flows from starving outright.
func capLink(orig netem.LinkConfig, bps int64) netem.LinkConfig {
	cfg := faults.CapRate(orig, bps)
	if cfg.RateBps < orig.RateBps && orig.RateBps > 0 && orig.QueueBytes > 0 {
		q := int(float64(orig.QueueBytes) * float64(cfg.RateBps) / float64(orig.RateBps))
		if min := 16 * 1500; q < min {
			q = min
		}
		if q < orig.QueueBytes {
			cfg.QueueBytes = q
		}
	}
	return cfg
}

// Collect reads every member's offered and serialized byte deltas since the
// previous Collect, refreshes the member demand signals, and returns the
// per-coupler-link sums (slices owned by the meter, valid until the next
// call) — the arguments for Coupler.Report.
func (m *Meter) Collect() (offered, sent []uint64) {
	epochSec := m.c.epoch.Seconds()
	for j, members := range m.members {
		var off, snt uint64
		for _, ml := range members {
			st := ml.link.Stats()
			dOff := st.OfferedBytes - ml.lastOffered
			dSnt := st.SentBytes - ml.lastSent
			ml.lastOffered, ml.lastSent = st.OfferedBytes, st.SentBytes
			ml.demandBps = SmoothDemand(ml.demandBps, int64(float64(dOff)*8/epochSec))
			off += dOff
			snt += dSnt
			if capDebug {
				fmt.Fprintf(os.Stderr, "CAPDBG collect link=%d off=%d sent=%d queued=%d dropQ=%d cap=%d\n",
					j, dOff, dSnt, ml.link.QueueBytes(), st.DroppedQueue, ml.link.Config().RateBps)
			}
		}
		m.offered[j], m.sent[j] = off, snt
	}
	return m.offered, m.sent
}
