package capacity

import "sort"

// MaxMin computes the weighted max-min fair allocation of capacity (bits per
// second) among the given demands: every claimant receives
// min(demand, water × weight) with the water level chosen so the allocations
// sum to min(capacity, Σdemands). Nobody gets more than they asked for, and a
// claimant is capped below its demand only when everyone still unsatisfied is
// held to the same weighted share.
//
// Weights ≤ 0 are treated as 1 (the unweighted default). The computation is
// exact one-pass water-filling over claimants sorted by demand/weight with
// index-order tie-breaking, so the result is a pure deterministic function of
// (capacity, demands, weights) — no map iteration, no randomness.
func MaxMin(capacity int64, demands []int64, weights []float64) []int64 {
	n := len(demands)
	alloc := make([]int64, n)
	if n == 0 || capacity <= 0 {
		return alloc
	}
	w := make([]float64, n)
	wsum := 0.0
	for i := range w {
		w[i] = 1
		if i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		}
		wsum += w[i]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Ascending demand-per-weight: once one claimant's fair share falls short
	// of its demand, every later claimant's does too.
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		ra := float64(demands[ia]) / w[ia]
		rb := float64(demands[ib]) / w[ib]
		if ra != rb {
			return ra < rb
		}
		return ia < ib
	})
	remaining := capacity
	for _, i := range order {
		if remaining <= 0 {
			break
		}
		share := int64(float64(remaining) * w[i] / wsum)
		d := demands[i]
		if d < 0 {
			d = 0
		}
		if d <= share {
			alloc[i] = d
		} else {
			alloc[i] = share
		}
		remaining -= alloc[i]
		wsum -= w[i]
	}
	return alloc
}

// Admit turns one window's measured demands into the next window's admitted
// rates — the allocation rule both coupler (across shards) and meter (across
// a shard's members) apply:
//
//  1. Active claimants (nonzero measured demand) compete by weighted max-min
//     over *doubled* demands. Raw measurements would pin the allocation — a
//     TCP sender above a rate cap is ack-clocked to the cap, so its measured
//     rate equals its allocation and max-min would never grant more even with
//     the resource idle; the doubling leaves every active claimant a
//     multiplicative probe band.
//  2. Every claimant still below its weighted fair share — idle members, and
//     crucially the barely-active ones whose doubled demand is still tiny
//     (a flow that has sent one handshake) — is topped up toward the fair
//     share out of whatever the probe targets left unclaimed. Admission
//     stays open and a fresh flow starts at fair speed when the resource
//     has slack, but a contended resource is never stranded on claimants
//     with nothing to send.
//  3. Remaining headroom is spread in proportion to the grants, so
//     demonstrated demand absorbs most of the slack and can keep revealing
//     growth.
//
// The result always sums to at most capacity (exactly capacity whenever any
// demand was measured), and is a pure deterministic function of its
// arguments. A window with no measured demand at all falls back to the
// weight-proportional spread, which is also the correct epoch-0 allocation.
func Admit(capacity int64, demands []int64, weights []float64) []int64 {
	n := len(demands)
	if n == 0 {
		return []int64{}
	}
	targets := make([]int64, n)
	anyActive := false
	for i, d := range demands {
		if d > 0 {
			targets[i] = 2 * d
			anyActive = true
		}
	}
	if !anyActive {
		return SpreadHeadroom(capacity, make([]int64, n), weights)
	}
	alloc := MaxMin(capacity, targets, weights)
	var used int64
	for _, a := range alloc {
		used += a
	}
	if leftover := capacity - used; leftover > 0 {
		// Fair-share floors, carved from the leftover only: every claimant
		// whose probe grant fell short of a weighted fair share of the whole
		// resource — idle members and barely-active ones alike — is topped up
		// toward it, max-min over the shortfalls so the leftover is never
		// oversubscribed. Claimants already at or above fair share have a zero
		// shortfall and stay out.
		wsum := 0.0
		for i := range demands {
			w := 1.0
			if i < len(weights) && weights[i] > 0 {
				w = weights[i]
			}
			wsum += w
		}
		floors := make([]int64, n)
		for i := range demands {
			w := 1.0
			if i < len(weights) && weights[i] > 0 {
				w = weights[i]
			}
			if fair := int64(float64(capacity) * w / wsum); alloc[i] < fair {
				floors[i] = fair - alloc[i]
			}
		}
		for i, g := range MaxMin(leftover, floors, weights) {
			alloc[i] += g
		}
	}
	return SpreadHeadroomByAlloc(capacity, alloc, weights)
}

// SmoothDemand folds one window's measured demand into a peak-hold-with-decay
// estimate: the new estimate is the measurement unless the previous estimate,
// halved, is larger. A TCP sender waiting out a retransmission timeout offers
// nothing for a window, and snapping its demand to zero would hand it a
// near-zero cap that makes the stall permanent — under contention a
// zero-demand claimant wins no allocation at all. Halving instead lets a
// genuinely finished claimant release its share within a few windows while a
// stalled one keeps enough admitted rate to recover.
func SmoothDemand(prev, measured int64) int64 {
	if half := prev / 2; measured < half {
		return half
	}
	return measured
}

// TrickleFloor is the minimum admitted rate for one claimant of a shared
// resource: about two full-size segments per epoch window, bounded by the
// claimant's weighted fair share of the resource. A real shared link is one
// FIFO — any sender can always inject a packet — and the distributed
// equivalent is that no claimant's cap may fall below a trickle. Below it, a
// claimant that stalls for one window gets a near-zero cap, its next window's
// enqueue commits its link to seconds of serialization at that rate, and the
// stall becomes self-sustaining. Callers raise an Admit result to the floor
// after allocation; the overbooking is at most a few segments per stalled
// claimant per epoch, and a claimant actually using its floor reveals demand
// and rejoins the capacity-constrained allocation next window.
func TrickleFloor(capacity int64, epochSec float64, weight, wsum float64) int64 {
	f := int64(2 * 1500 * 8 / epochSec)
	if weight <= 0 {
		weight = 1
	}
	if fair := int64(float64(capacity) * weight / wsum); fair < f {
		f = fair
	}
	return f
}

// SpreadHeadroom distributes the capacity left unclaimed by a max-min
// allocation back to the claimants in proportion to weight, returning a new
// slice that sums to (almost exactly) capacity. The headroom is what lets a
// rate-capped TCP flow reveal growing demand: with alloc == last-measured
// offered bytes, the cap would pin the measurement to itself forever; with
// each claimant holding its allocation plus a weighted slice of the slack, a
// sender that wants more can offer more, and the next epoch's max-min sees
// it. Integer floors leave at most a few bits per second unassigned; they go
// to the lowest-indexed claimant so the result stays deterministic.
func SpreadHeadroom(capacity int64, alloc []int64, weights []float64) []int64 {
	n := len(alloc)
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	var used int64
	wsum := 0.0
	w := make([]float64, n)
	for i := range alloc {
		used += alloc[i]
		w[i] = 1
		if i < len(weights) && weights[i] > 0 {
			w[i] = weights[i]
		}
		wsum += w[i]
	}
	leftover := capacity - used
	if leftover < 0 {
		leftover = 0
	}
	var given int64
	for i := range alloc {
		extra := int64(float64(leftover) * w[i] / wsum)
		out[i] = alloc[i] + extra
		given += extra
	}
	out[0] += leftover - given
	return out
}

// SpreadHeadroomByAlloc distributes the unclaimed capacity in proportion to
// each claimant's granted allocation instead of its weight: headroom follows
// demonstrated demand, so the active claimants absorb the slack (and ramp
// multiplicatively on top of their probe targets) while idle claimants keep
// only their probe floor instead of stranding a weight-share of an
// almost-idle resource. When nothing was granted — epoch zero, or a fully
// idle window — it falls back to the weighted spread. The integer residue
// goes to the first claimant with a grant, keeping the result deterministic.
func SpreadHeadroomByAlloc(capacity int64, alloc []int64, weights []float64) []int64 {
	var used int64
	for _, a := range alloc {
		used += a
	}
	if used <= 0 {
		return SpreadHeadroom(capacity, alloc, weights)
	}
	out := make([]int64, len(alloc))
	leftover := capacity - used
	if leftover < 0 {
		leftover = 0
	}
	var given int64
	first := -1
	for i, a := range alloc {
		extra := int64(float64(leftover) * float64(a) / float64(used))
		out[i] = a + extra
		given += extra
		if first < 0 && a > 0 {
			first = i
		}
	}
	out[first] += leftover - given
	return out
}
