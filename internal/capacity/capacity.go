// Package capacity couples the otherwise-independent shards of a fleet run
// through named shared bottlenecks: a core link, a CDN egress port, a
// datacenter spine — any resource whose rate all members contend for even
// though each shard simulates its own private network.
//
// The coupling is epoch-based, borrowing the batch-amortization discipline of
// high-rate forwarders: shards exchange capacity once per epoch window, not
// per packet, so the layer costs O(shards) per window rather than O(segments).
// Every shard simulates one epoch of its private topology, reports the bytes
// its tagged link directions offered to each shared resource, and a
// deterministic allocator computes each shard's admitted rate for the next
// window. The rate lands as a link-config swap (the same transform as the
// fault layer's rate squeeze) on the tagged directions at the epoch boundary.
//
// Determinism: an allocation depends only on (epoch index, shard index,
// offered bytes). Offered bytes come from each shard's private deterministic
// simulation; the allocator iterates shards in index order; and the fleet
// engine's epoch barrier orders every Report before the Allocate that reads
// it. Worker-count and wall-clock interleaving therefore never reach the
// arithmetic, preserving the merge discipline of the sharded engine — merged
// results stay byte-identical at any worker count.
package capacity

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// DefaultEpoch is the capacity-exchange window used when a spec does not name
// one: long enough to amortize the barrier, short enough that TCP reacts to a
// reallocation within a few RTTs.
const DefaultEpoch = 100 * time.Millisecond

// DefaultName is the shared-link name assumed by the CLI grammar when the
// spec omits one.
const DefaultName = "core"

// SharedLink declares one shared capacity resource. Link directions tagged
// with its name (netem.LinkSpec.SharedAB/SharedBA) jointly respect RateBps:
// each tagged direction keeps its own configured rate as a ceiling, and the
// allocator caps the set further so admitted rates sum to the shared rate.
type SharedLink struct {
	// Name identifies the resource; tags reference it.
	Name string
	// RateBps is the shared capacity in bits per second.
	RateBps int64
	// Epoch is the capacity-exchange window (0 = DefaultEpoch). Every shared
	// link of one run must use the same epoch; the coupler enforces it.
	Epoch time.Duration
}

func (l SharedLink) withDefaults() SharedLink {
	if l.Name == "" {
		l.Name = DefaultName
	}
	if l.Epoch <= 0 {
		l.Epoch = DefaultEpoch
	}
	return l
}

// Validate reports whether the spec is runnable.
func (l SharedLink) Validate() error {
	if l.Name == "" {
		return fmt.Errorf("capacity: shared link has no name")
	}
	if strings.ContainsAny(l.Name, ":,; \t") {
		return fmt.Errorf("capacity: shared link name %q contains reserved characters", l.Name)
	}
	if l.RateBps <= 0 {
		return fmt.Errorf("capacity: shared link %q rate %d must be positive", l.Name, l.RateBps)
	}
	if l.Epoch < time.Millisecond {
		return fmt.Errorf("capacity: shared link %q epoch %v is below the 1ms floor", l.Name, l.Epoch)
	}
	return nil
}

// String reserializes the spec in the canonical CLI form name:rate:epoch.
func (l SharedLink) String() string {
	return l.Name + ":" + FormatRate(l.RateBps) + ":" + l.Epoch.String()
}

// ParseSharedLink parses the -shared-link CLI grammar:
//
//	[name:]<rate>[:<epoch>]
//
// where <rate> is a bit-per-second figure with an optional kbps/mbps/gbps
// suffix ("10mbps", "400kbps", "2.5gbps", "800000") and <epoch> is a Go
// duration ("100ms", "1s"; default 100ms). The name defaults to "core". The
// leading token is a name exactly when it does not parse as a rate, so
// "10mbps:250ms", "core:10mbps" and "egress:2gbps:50ms" all work.
func ParseSharedLink(spec string) (SharedLink, error) {
	parts := strings.Split(spec, ":")
	if len(parts) > 3 {
		return SharedLink{}, fmt.Errorf("capacity: spec %q has %d fields, want [name:]rate[:epoch]", spec, len(parts))
	}
	var l SharedLink
	if _, err := ParseRate(parts[0]); err != nil && len(parts) > 1 {
		l.Name = parts[0]
		parts = parts[1:]
	}
	if len(parts) > 2 {
		return SharedLink{}, fmt.Errorf("capacity: spec %q has trailing fields after the epoch", spec)
	}
	rate, err := ParseRate(parts[0])
	if err != nil {
		return SharedLink{}, fmt.Errorf("capacity: spec %q: %w", spec, err)
	}
	l.RateBps = rate
	if len(parts) == 2 {
		d, err := time.ParseDuration(parts[1])
		if err != nil {
			return SharedLink{}, fmt.Errorf("capacity: spec %q: bad epoch %q", spec, parts[1])
		}
		// An explicit epoch must stand on its own: a zero here is a spec
		// error, not a request for the default.
		if d < time.Millisecond {
			return SharedLink{}, fmt.Errorf("capacity: spec %q: epoch %v is below the 1ms floor", spec, d)
		}
		l.Epoch = d
	}
	l = l.withDefaults()
	if err := l.Validate(); err != nil {
		return SharedLink{}, err
	}
	return l, nil
}

// rateUnits maps the accepted rate suffixes to bits per second. Order
// matters: longer suffixes must match before their substrings.
var rateUnits = []struct {
	suffix string
	scale  float64
}{
	{"gbps", 1e9}, {"mbps", 1e6}, {"kbps", 1e3}, {"bps", 1},
	{"g", 1e9}, {"m", 1e6}, {"k", 1e3},
}

// ParseRate parses a rate figure: a float with an optional (case-insensitive)
// kbps/mbps/gbps suffix or single-letter k/m/g shorthand; a bare number is
// bits per second.
func ParseRate(s string) (int64, error) {
	num, scale := strings.ToLower(strings.TrimSpace(s)), 1.0
	for _, u := range rateUnits {
		if strings.HasSuffix(num, u.suffix) {
			num, scale = num[:len(num)-len(u.suffix)], u.scale
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v <= 0 || v*scale > 1e15 {
		return 0, fmt.Errorf("bad rate %q (want e.g. 10mbps, 400kbps, 2.5gbps or plain bits/s)", s)
	}
	return int64(v * scale), nil
}

// FormatRate renders a bit-per-second figure in the largest exact unit, the
// inverse of ParseRate for canonical reserialization.
func FormatRate(bps int64) string {
	switch {
	case bps >= 1e9 && bps%1e9 == 0:
		return strconv.FormatInt(bps/1e9, 10) + "gbps"
	case bps >= 1e6 && bps%1e6 == 0:
		return strconv.FormatInt(bps/1e6, 10) + "mbps"
	case bps >= 1e3 && bps%1e3 == 0:
		return strconv.FormatInt(bps/1e3, 10) + "kbps"
	}
	return strconv.FormatInt(bps, 10)
}
