package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Plane bundles the telemetry surfaces one run attaches: a metrics registry,
// a phase profiler, the per-shard tracker, and (after merge) the fleet
// latency histogram. A nil *Plane is a valid "telemetry off" value — every
// method and every derived handle is a no-op — so specs carry a single
// optional pointer and instrumented code never branches.
type Plane struct {
	Label string
	Reg   *Registry
	Prof  *Profiler
	Track *Tracker

	mu      sync.Mutex
	latency *Histogram
}

// New returns a fully wired plane.
func New(label string) *Plane {
	return &Plane{
		Label: label,
		Reg:   NewRegistry(),
		Prof:  NewProfiler(),
		Track: NewTracker(),
	}
}

// StartSpan opens a profiler span; no-op (nil span) on a nil plane.
func (p *Plane) StartSpan(path string) *Span {
	if p == nil {
		return nil
	}
	return p.Prof.Start(path)
}

// SetLatency publishes the merged fleet latency histogram for exposition.
func (p *Plane) SetLatency(h *Histogram) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.latency = h
	p.mu.Unlock()
}

// Latency returns the last published merged latency histogram, nil if none.
func (p *Plane) Latency() *Histogram {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.latency
}

// WritePrometheus renders the whole plane in Prometheus text format:
// registry metrics, tracker gauges, profiler phases, latency quantiles, and
// a small runtime block.
func (p *Plane) WritePrometheus(w io.Writer) {
	if p == nil {
		return
	}
	p.Reg.WritePrometheus(w)
	p.Track.WritePrometheus(w)
	p.Prof.WritePrometheus(w)
	if h := p.Latency(); h.Count() > 0 {
		fmt.Fprint(w, "# HELP fleet_latency_ms fleet latency quantiles (histogram-derived, milliseconds)\n")
		fmt.Fprint(w, "# TYPE fleet_latency_ms gauge\n")
		for _, q := range []float64{50, 95, 99} {
			fmt.Fprintf(w, "fleet_latency_ms{quantile=\"%g\"} %g\n", q/100, h.Quantile(q))
		}
		fmt.Fprintf(w, "# HELP fleet_latency_samples_total latency observations\n# TYPE fleet_latency_samples_total counter\nfleet_latency_samples_total %d\n", h.Count())
	}
	fmt.Fprintf(w, "# HELP go_goroutines current goroutine count\n# TYPE go_goroutines gauge\ngo_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(w, "# HELP go_gomaxprocs GOMAXPROCS\n# TYPE go_gomaxprocs gauge\ngo_gomaxprocs %d\n", runtime.GOMAXPROCS(0))
}

// WriteVars renders the plane as a flat expvar-style JSON object.
func (p *Plane) WriteVars(w io.Writer) {
	if p == nil {
		fmt.Fprint(w, "{}\n")
		return
	}
	fmt.Fprint(w, "{\n")
	first := p.Reg.WriteVars(w, true)
	snap := p.Track.Snapshot()
	emit := func(name, val string) {
		if !first {
			fmt.Fprint(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", name, val)
	}
	emit("fleet_shards", fmt.Sprintf("%d", snap.Shards))
	emit("fleet_shards_done", fmt.Sprintf("%d", snap.ShardsDone))
	emit("fleet_sim_time_seconds", fmt.Sprintf("%g", snap.SimMax.Seconds()))
	emit("fleet_events_total", fmt.Sprintf("%d", snap.Events))
	emit("fleet_segments_total", fmt.Sprintf("%d", snap.Segments))
	emit("fleet_flows_done", fmt.Sprintf("%d", snap.FlowsDone))
	emit("fleet_flows_offered", fmt.Sprintf("%d", snap.FlowsOffered))
	if h := p.Latency(); h.Count() > 0 {
		emit("fleet_latency_p50_ms", fmt.Sprintf("%g", h.Quantile(50)))
		emit("fleet_latency_p99_ms", fmt.Sprintf("%g", h.Quantile(99)))
	}
	fmt.Fprint(w, "\n}\n")
}
