package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress prints periodic one-line run status to a writer (stderr in
// mptcpbench). It reads only atomic tracker snapshots, so it can run beside
// the deterministic core without perturbing it; every number it prints is
// wall-clock-derived and never feeds back into results.
type Progress struct {
	w        io.Writer
	plane    *Plane
	interval time.Duration

	mu       sync.Mutex
	stop     chan struct{}
	done     chan struct{}
	lastWall time.Time
	lastSnap TrackerSnapshot
}

// StartProgress begins printing a status line every interval (default 1s)
// until Stop. A nil plane returns a nil Progress whose Stop is a no-op.
func StartProgress(w io.Writer, p *Plane, interval time.Duration) *Progress {
	if p == nil {
		return nil
	}
	if interval <= 0 {
		interval = time.Second
	}
	pr := &Progress{
		w:        w,
		plane:    p,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		lastWall: time.Now(),
	}
	go pr.loop()
	return pr
}

func (pr *Progress) loop() {
	defer close(pr.done)
	t := time.NewTicker(pr.interval)
	defer t.Stop()
	for {
		select {
		case <-pr.stop:
			return
		case <-t.C:
			pr.print()
		}
	}
}

// Stop halts the ticker and prints one final line so short runs still show a
// terminal status. Safe on a nil receiver and safe to call once.
func (pr *Progress) Stop() {
	if pr == nil {
		return
	}
	close(pr.stop)
	<-pr.done
	pr.print()
}

func (pr *Progress) print() {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	now := time.Now()
	snap := pr.plane.Track.Snapshot()
	dt := now.Sub(pr.lastWall).Seconds()
	var evRate, segRate float64
	if dt > 0 {
		evRate = float64(snap.Events-pr.lastSnap.Events) / dt
		segRate = float64(snap.Segments-pr.lastSnap.Segments) / dt
	}
	wall := now.Sub(pr.plane.Track.Start())
	speed := 0.0
	if wall > 0 {
		speed = snap.SimMax.Seconds() / wall.Seconds()
	}
	line := fmt.Sprintf("progress[%s]: sim %.3fs wall %.1fs (%.2fx) | %s ev/s | %s seg/s | flows %d/%d | shards %d/%d done",
		pr.plane.Label, snap.SimMax.Seconds(), wall.Seconds(), speed,
		fmtRate(evRate), fmtRate(segRate),
		snap.FlowsDone, snap.FlowsOffered, snap.ShardsDone, snap.Shards)
	if snap.LagShard >= 0 && snap.MaxLag > 0 {
		line += fmt.Sprintf(" | lag shard%d +%v", snap.LagShard, snap.MaxLag.Round(time.Millisecond))
	}
	fmt.Fprintln(pr.w, line)
	pr.lastWall = now
	pr.lastSnap = snap
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
