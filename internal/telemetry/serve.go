package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server exposes a plane over HTTP: /metrics in Prometheus text format and
// /debug/vars as flat expvar-style JSON. It is self-hosted (its own mux and
// listener, never the process-global expvar/http registries, which panic on
// duplicate registration under `go test`) and reads only atomic snapshots,
// so it is safe to scrape mid-run.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the exposition server on addr (":0" picks a free port; read
// it back with Addr). The returned server runs until Close.
func Serve(addr string, p *Plane) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		p.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		p.WriteVars(w)
	})
	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the listener down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
