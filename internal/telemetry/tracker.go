package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ShardCell is the per-shard publication slot: the shard's step loop stores
// into it with plain atomic writes, and progress/exposition goroutines read
// it without ever blocking the simulation. One cell per shard, allocated
// once at attach time — the hot path performs no allocation or locking.
type ShardCell struct {
	// SimNowNs is the shard simulator's current virtual time.
	SimNowNs atomic.Int64
	// Events counts simulator events processed; Segments counts data
	// segments sent across the shard's links.
	Events   atomic.Uint64
	Segments atomic.Uint64
	// FlowsDone / FlowsOffered track workload completion within the shard.
	FlowsDone    atomic.Int64
	FlowsOffered atomic.Int64
	// EpochWallNs is the wall-clock cost of the shard's last coupled epoch
	// window (straggler detection at the barrier).
	EpochWallNs atomic.Int64
	// Done flips once the shard has been collected.
	Done atomic.Bool
}

// Tracker owns the shard cells and computes fleet-wide snapshots for
// progress lines and /metrics.
type Tracker struct {
	mu    sync.Mutex
	start time.Time
	cells []*ShardCell
}

// NewTracker returns a tracker; the wall-clock origin for progress rates is
// the moment of creation.
func NewTracker() *Tracker {
	return &Tracker{start: time.Now()}
}

// Cell returns shard index's publication slot, sizing the table to count on
// first use. Safe to call from concurrent shard setup; nil-receiver safe.
func (t *Tracker) Cell(index, count int) *ShardCell {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if count > len(t.cells) {
		grown := make([]*ShardCell, count)
		copy(grown, t.cells)
		t.cells = grown
	}
	if index < 0 || index >= len(t.cells) {
		return nil
	}
	if t.cells[index] == nil {
		t.cells[index] = &ShardCell{}
	}
	return t.cells[index]
}

// Start returns the tracker's wall-clock origin.
func (t *Tracker) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// TrackerSnapshot is a consistent-enough read of the fleet state: each field
// is individually atomic; cross-field skew is bounded by one publish
// interval, which is fine for progress display.
type TrackerSnapshot struct {
	Shards       int
	ShardsDone   int
	SimMin       time.Duration // slowest active shard (0 when all done)
	SimMax       time.Duration // fastest shard
	Events       uint64
	Segments     uint64
	FlowsDone    int64
	FlowsOffered int64
	MaxLag       time.Duration // SimMax - sim of the laggiest active shard
	LagShard     int           // index of that shard, -1 when none
	MaxEpochWall time.Duration
}

func (t *Tracker) snapshotCells() []*ShardCell {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*ShardCell, len(t.cells))
	copy(out, t.cells)
	return out
}

// Snapshot folds the shard cells into fleet totals.
func (t *Tracker) Snapshot() TrackerSnapshot {
	snap := TrackerSnapshot{LagShard: -1}
	if t == nil {
		return snap
	}
	cells := t.snapshotCells()
	first := true
	for i, c := range cells {
		if c == nil {
			continue
		}
		snap.Shards++
		now := time.Duration(c.SimNowNs.Load())
		done := c.Done.Load()
		if done {
			snap.ShardsDone++
		}
		snap.Events += c.Events.Load()
		snap.Segments += c.Segments.Load()
		snap.FlowsDone += c.FlowsDone.Load()
		snap.FlowsOffered += c.FlowsOffered.Load()
		if w := time.Duration(c.EpochWallNs.Load()); w > snap.MaxEpochWall {
			snap.MaxEpochWall = w
		}
		if now > snap.SimMax {
			snap.SimMax = now
		}
		if !done {
			if first || now < snap.SimMin {
				snap.SimMin = now
				snap.LagShard = i
				first = false
			}
		}
	}
	if snap.LagShard >= 0 {
		snap.MaxLag = snap.SimMax - snap.SimMin
	}
	return snap
}

// WritePrometheus renders per-shard gauges plus fleet totals.
func (t *Tracker) WritePrometheus(w io.Writer) {
	if t == nil {
		return
	}
	cells := t.snapshotCells()
	if len(cells) == 0 {
		return
	}
	var simMax time.Duration
	for _, c := range cells {
		if c == nil {
			continue
		}
		if now := time.Duration(c.SimNowNs.Load()); now > simMax {
			simMax = now
		}
	}
	emit := func(name, help, typ string, value func(*ShardCell) string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for i, c := range cells {
			if c == nil {
				continue
			}
			fmt.Fprintf(w, "%s{shard=\"%d\"} %s\n", name, i, value(c))
		}
	}
	emit("fleet_shard_sim_time_seconds", "shard simulator virtual time", "gauge",
		func(c *ShardCell) string { return fmt.Sprintf("%g", time.Duration(c.SimNowNs.Load()).Seconds()) })
	emit("fleet_shard_step_lag_seconds", "sim-time gap behind the fastest shard (active shards only)", "gauge",
		func(c *ShardCell) string {
			if c.Done.Load() {
				return "0"
			}
			return fmt.Sprintf("%g", (simMax - time.Duration(c.SimNowNs.Load())).Seconds())
		})
	emit("fleet_shard_events_total", "simulator events processed", "counter",
		func(c *ShardCell) string { return fmt.Sprintf("%d", c.Events.Load()) })
	emit("fleet_shard_segments_total", "data segments sent", "counter",
		func(c *ShardCell) string { return fmt.Sprintf("%d", c.Segments.Load()) })
	emit("fleet_shard_flows_done", "workload flows finished", "gauge",
		func(c *ShardCell) string { return fmt.Sprintf("%d", c.FlowsDone.Load()) })
	emit("fleet_shard_flows_offered", "workload flows offered", "gauge",
		func(c *ShardCell) string { return fmt.Sprintf("%d", c.FlowsOffered.Load()) })
	emit("fleet_shard_epoch_wall_seconds", "wall-clock of the last coupled epoch window", "gauge",
		func(c *ShardCell) string { return fmt.Sprintf("%g", time.Duration(c.EpochWallNs.Load()).Seconds()) })

	snap := t.Snapshot()
	fmt.Fprintf(w, "# HELP fleet_shards shard count\n# TYPE fleet_shards gauge\nfleet_shards %d\n", snap.Shards)
	fmt.Fprintf(w, "# HELP fleet_shards_done shards collected\n# TYPE fleet_shards_done gauge\nfleet_shards_done %d\n", snap.ShardsDone)
	fmt.Fprintf(w, "# HELP fleet_sim_time_seconds fastest shard virtual time\n# TYPE fleet_sim_time_seconds gauge\nfleet_sim_time_seconds %g\n", snap.SimMax.Seconds())
	fmt.Fprintf(w, "# HELP fleet_events_total simulator events processed across shards\n# TYPE fleet_events_total counter\nfleet_events_total %d\n", snap.Events)
	fmt.Fprintf(w, "# HELP fleet_segments_total data segments sent across shards\n# TYPE fleet_segments_total counter\nfleet_segments_total %d\n", snap.Segments)
}
