package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// RunInfo is the provenance block for one benchmark run: enough to
// re-attribute any BENCH snapshot or trace directory to the exact
// configuration and build that produced it. The config/environment fields
// are stable for a given build+flags; the wall-clock and phase fields are
// machine-dependent and only appear in sidecar files, never in
// deterministic goldens.
type RunInfo struct {
	Name       string            `json:"name"`
	Seed       uint64            `json:"seed"`
	Quick      bool              `json:"quick,omitempty"`
	Args       []string          `json:"args,omitempty"`
	Flags      map[string]string `json:"flags,omitempty"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	// VCS fields come from debug.ReadBuildInfo; absent under plain `go run`
	// or `go test` builds without VCS stamping.
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`

	// Filled in by Finish.
	WallClockMs float64     `json:"wall_clock_ms,omitempty"`
	Phases      []PhaseStat `json:"phases,omitempty"`
	LatencyP50  float64     `json:"latency_p50_ms,omitempty"`
	LatencyP99  float64     `json:"latency_p99_ms,omitempty"`
	LatencyObs  uint64      `json:"latency_samples,omitempty"`
}

// CollectRunInfo captures the configuration and build environment for a run.
func CollectRunInfo(name string, seed uint64, quick bool) *RunInfo {
	ri := &RunInfo{
		Name:       name,
		Seed:       seed,
		Quick:      quick,
		Args:       os.Args[1:],
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		StartedAt:  time.Now().UTC().Format(time.RFC3339),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				ri.VCSRevision = s.Value
			case "vcs.time":
				ri.VCSTime = s.Value
			case "vcs.modified":
				ri.VCSModified = s.Value == "true"
			}
		}
	}
	return ri
}

// SetFlag records one resolved flag value.
func (ri *RunInfo) SetFlag(name, value string) {
	if ri == nil {
		return
	}
	if ri.Flags == nil {
		ri.Flags = make(map[string]string)
	}
	ri.Flags[name] = value
}

// Finish folds the run's wall clock, phase profile, and latency summary into
// the provenance block.
func (ri *RunInfo) Finish(p *Plane, wall time.Duration) {
	if ri == nil {
		return
	}
	ri.WallClockMs = float64(wall) / float64(time.Millisecond)
	if p == nil {
		return
	}
	ri.Phases = p.Prof.Snapshot()
	if h := p.Latency(); h.Count() > 0 {
		ri.LatencyP50 = h.Quantile(50)
		ri.LatencyP99 = h.Quantile(99)
		ri.LatencyObs = h.Count()
	}
}

// Config returns a copy with the machine-dependent result fields cleared —
// the portion safe to write next to deterministic trace output.
func (ri *RunInfo) Config() *RunInfo {
	if ri == nil {
		return nil
	}
	c := *ri
	c.WallClockMs = 0
	c.Phases = nil
	c.LatencyP50, c.LatencyP99, c.LatencyObs = 0, 0, 0
	return &c
}

// WriteFile writes the provenance block as indented JSON.
func (ri *RunInfo) WriteFile(path string) error {
	if ri == nil {
		return nil
	}
	data, err := json.MarshalIndent(ri, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: encode runinfo: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
