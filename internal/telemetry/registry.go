package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Counter is a monotonically increasing atomic counter. Safe for concurrent
// use from shard goroutines; exposition goroutines read Value.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter. Nil-receiver safe so call sites stay
// unconditional whether or not telemetry is attached.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-receiver safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// Registry holds named counters and gauges and renders them in sorted name
// order so exposition output is deterministic. Metric registration is
// idempotent: asking for an existing name returns the existing instrument.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		help:     make(map[string]string),
	}
}

// Counter returns the counter registered under name, creating it on first
// use. Nil-receiver safe: returns a nil *Counter whose methods are no-ops.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// WritePrometheus renders every registered metric in Prometheus text format,
// sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	counters := make(map[string]uint64, len(r.counters))
	gauges := make(map[string]float64, len(r.gauges))
	help := make(map[string]string, len(r.help))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	for name, h := range r.help {
		help[name] = h
	}
	r.mu.Unlock()

	sort.Strings(names)
	for _, name := range names {
		if h := help[name]; h != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, h)
		}
		if v, ok := counters[name]; ok {
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, v)
		} else {
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name])
		}
	}
}

// WriteVars renders every registered metric as a flat JSON object (expvar
// style), sorted by name.
func (r *Registry) WriteVars(w io.Writer, first bool) bool {
	if r == nil {
		return first
	}
	r.mu.Lock()
	type kv struct {
		name string
		val  string
	}
	vars := make([]kv, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		vars = append(vars, kv{name, fmt.Sprintf("%d", c.Value())})
	}
	for name, g := range r.gauges {
		vars = append(vars, kv{name, fmt.Sprintf("%g", g.Value())})
	}
	r.mu.Unlock()

	sort.Slice(vars, func(i, j int) bool { return vars[i].name < vars[j].name })
	for _, v := range vars {
		if !first {
			fmt.Fprint(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", v.name, v.val)
	}
	return first
}
