package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Profiler aggregates wall-clock spans by slash-separated path
// ("run/shard-step", "run/epoch-barrier/allocate"). It measures where real
// time goes — build-graph, shard-step, epoch-barrier, allocate, merge,
// encode — and never touches sim-time: all durations come from the host's
// monotonic clock via time.Since.
//
// Profiler methods are safe for concurrent use (shard workers overlap), and
// nil-receiver safe so instrumented code paths need no telemetry branching.
type Profiler struct {
	mu    sync.Mutex
	stats map[string]*PhaseStat
}

// PhaseStat is the aggregate for one span path.
type PhaseStat struct {
	Path    string `json:"path"`
	Count   int64  `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MinNs   int64  `json:"min_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// Span is one in-flight timed region. End folds it into the profiler;
// Child starts a nested span whose path extends the parent's.
type Span struct {
	p     *Profiler
	path  string
	start time.Time
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{stats: make(map[string]*PhaseStat)}
}

// Start begins a span at the given path. A nil profiler returns a nil span
// whose Child and End are no-ops.
func (p *Profiler) Start(path string) *Span {
	if p == nil {
		return nil
	}
	return &Span{p: p, path: path, start: time.Now()}
}

// Child starts a nested span under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{p: s.p, path: s.path + "/" + name, start: time.Now()}
}

// End records the elapsed wall time into the profiler. Safe to call once per
// span; a nil span is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.p.record(s.path, time.Since(s.start))
}

func (p *Profiler) record(path string, d time.Duration) {
	ns := int64(d)
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.stats[path]
	if !ok {
		st = &PhaseStat{Path: path, MinNs: ns, MaxNs: ns}
		p.stats[path] = st
	}
	st.Count++
	st.TotalNs += ns
	if ns < st.MinNs {
		st.MinNs = ns
	}
	if ns > st.MaxNs {
		st.MaxNs = ns
	}
}

// Snapshot returns a copy of all phase stats sorted by path.
func (p *Profiler) Snapshot() []PhaseStat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	out := make([]PhaseStat, 0, len(p.stats))
	for _, st := range p.stats {
		out = append(out, *st)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// WriteReport renders a human-readable phase table (wall-clock; goes to
// stderr, never into deterministic results).
func (p *Profiler) WriteReport(w io.Writer) {
	stats := p.Snapshot()
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(w, "phase profile (wall-clock):\n")
	for _, st := range stats {
		total := time.Duration(st.TotalNs)
		fmt.Fprintf(w, "  %-40s %6dx total %-12v min %-12v max %v\n",
			st.Path, st.Count, total.Round(time.Microsecond),
			time.Duration(st.MinNs).Round(time.Microsecond),
			time.Duration(st.MaxNs).Round(time.Microsecond))
	}
}

// WritePrometheus renders per-phase totals as counters.
func (p *Profiler) WritePrometheus(w io.Writer) {
	stats := p.Snapshot()
	if len(stats) == 0 {
		return
	}
	fmt.Fprint(w, "# HELP phase_wall_seconds_total cumulative wall-clock per profiler phase\n")
	fmt.Fprint(w, "# TYPE phase_wall_seconds_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(w, "phase_wall_seconds_total{phase=%q} %g\n", st.Path, float64(st.TotalNs)/1e9)
	}
	fmt.Fprint(w, "# HELP phase_spans_total span count per profiler phase\n")
	fmt.Fprint(w, "# TYPE phase_spans_total counter\n")
	for _, st := range stats {
		fmt.Fprintf(w, "phase_spans_total{phase=%q} %d\n", st.Path, st.Count)
	}
}
