package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(body)
}

// rawPercentile mirrors trace.Percentile's ceil-rank convention.
func rawPercentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func TestHistogramQuantileTracksRaw(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(7))
	var samples []float64
	for i := 0; i < 10000; i++ {
		// Log-uniform over ~5 decades, the shape of latency data.
		v := math.Pow(10, rng.Float64()*5-2)
		samples = append(samples, v)
		h.Observe(v)
	}
	tol := h.RelativeResolution() * 2 // full bucket width
	for _, p := range []float64{50, 90, 95, 99, 99.9} {
		raw := rawPercentile(samples, p)
		got := h.Quantile(p)
		if math.Abs(got-raw)/raw > tol {
			t.Errorf("p%g: hist %g vs raw %g exceeds bucket resolution %g", p, got, raw, tol)
		}
	}
	if h.Min() != rawPercentile(samples, 0.0001) {
		// Min must be exact.
		min := samples[0]
		for _, v := range samples {
			if v < min {
				min = v
			}
		}
		if h.Min() != min {
			t.Errorf("Min %g != exact %g", h.Min(), min)
		}
	}
}

func TestHistogramSingleValueExact(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(3.7)
	for _, p := range []float64{50, 95, 99} {
		if got := h.Quantile(p); got != 3.7 {
			t.Errorf("p%g of single observation = %g, want exact 3.7", p, got)
		}
	}
	if h.Mean() != 3.7 || h.Min() != 3.7 || h.Max() != 3.7 {
		t.Errorf("single-value stats: mean %g min %g max %g", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramMergeInvariance(t *testing.T) {
	// The same multiset split into 1, 2, or 4 parts must produce
	// bit-identical quantiles after merge, regardless of split.
	rng := rand.New(rand.NewSource(42))
	var samples []float64
	for i := 0; i < 5000; i++ {
		samples = append(samples, math.Pow(10, rng.Float64()*4-1))
	}
	quantiles := func(parts int) string {
		hs := make([]*Histogram, parts)
		for i := range hs {
			hs[i] = NewLatencyHistogram()
		}
		for i, v := range samples {
			hs[i%parts].Observe(v)
		}
		total := NewLatencyHistogram()
		for _, h := range hs {
			if err := total.Merge(h); err != nil {
				t.Fatal(err)
			}
		}
		return fmt.Sprintf("%x %x %x %x %x %d",
			math.Float64bits(total.Quantile(50)), math.Float64bits(total.Quantile(95)),
			math.Float64bits(total.Quantile(99)), math.Float64bits(total.Min()),
			math.Float64bits(total.Max()), total.Count())
	}
	base := quantiles(1)
	for _, parts := range []int{2, 4, 7} {
		if got := quantiles(parts); got != base {
			t.Errorf("%d-way split quantiles differ:\n  1-way: %s\n  %d-way: %s", parts, base, parts, got)
		}
	}
}

func TestHistogramMergeIncompatible(t *testing.T) {
	a := NewHistogram(1e-3, 9, 12)
	b := NewHistogram(1e-2, 9, 12)
	b.Observe(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging histograms with different boundaries should error")
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(50) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram should read as empty")
	}
}

func TestProfilerSpanNesting(t *testing.T) {
	p := NewProfiler()
	run := p.Start("run")
	step := run.Child("shard-step")
	time.Sleep(time.Millisecond)
	step.End()
	alloc := run.Child("allocate")
	alloc.End()
	run.End()

	stats := p.Snapshot()
	paths := make([]string, len(stats))
	for i, st := range stats {
		paths[i] = st.Path
	}
	want := []string{"run", "run/allocate", "run/shard-step"}
	if fmt.Sprint(paths) != fmt.Sprint(want) {
		t.Fatalf("span paths = %v, want %v", paths, want)
	}
	for _, st := range stats {
		if st.Count != 1 || st.TotalNs < 0 || st.MinNs > st.MaxNs {
			t.Errorf("bad stat %+v", st)
		}
	}
	// Parent span covers the children.
	byPath := map[string]PhaseStat{}
	for _, st := range stats {
		byPath[st.Path] = st
	}
	if byPath["run"].TotalNs < byPath["run/shard-step"].TotalNs {
		t.Errorf("parent total %d < child total %d", byPath["run"].TotalNs, byPath["run/shard-step"].TotalNs)
	}
}

func TestProfilerConcurrent(t *testing.T) {
	p := NewProfiler()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s := p.Start("run/shard-step")
				s.End()
			}
		}()
	}
	wg.Wait()
	stats := p.Snapshot()
	if len(stats) != 1 || stats[0].Count != 800 {
		t.Fatalf("want 1 path with 800 spans, got %+v", stats)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	s := p.Start("x")
	s.Child("y").End()
	s.End()
	if p.Snapshot() != nil {
		t.Fatal("nil profiler snapshot should be nil")
	}
}

// parsePrometheus checks every non-comment line is "name[{labels}] value".
func parsePrometheus(t *testing.T, text string) map[string]bool {
	t.Helper()
	seen := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("unparseable metric line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("bad label block in %q", line)
			}
			name = name[:i]
		}
		if _, err := fmt.Sscanf(fields[1], "%f", new(float64)); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		seen[name] = true
	}
	return seen
}

func TestPlanePrometheusRender(t *testing.T) {
	p := New("test")
	p.Reg.Counter("capacity_epochs_total", "epochs allocated").Add(3)
	p.Reg.Gauge("demo_gauge", "a gauge").Set(1.5)
	cell := p.Track.Cell(0, 2)
	cell.SimNowNs.Store(int64(2 * time.Second))
	cell.Events.Store(100)
	p.Track.Cell(1, 2).SimNowNs.Store(int64(time.Second))
	span := p.StartSpan("run")
	span.End()
	h := NewLatencyHistogram()
	h.Observe(5)
	h.Observe(50)
	p.SetLatency(h)

	var sb strings.Builder
	p.WritePrometheus(&sb)
	seen := parsePrometheus(t, sb.String())
	for _, want := range []string{
		"capacity_epochs_total", "demo_gauge",
		"fleet_shard_sim_time_seconds", "fleet_shard_step_lag_seconds",
		"fleet_sim_time_seconds", "fleet_events_total",
		"phase_wall_seconds_total", "fleet_latency_ms", "go_goroutines",
	} {
		if !seen[want] {
			t.Errorf("missing metric %s in exposition:\n%s", want, sb.String())
		}
	}
}

func TestTrackerSnapshotLag(t *testing.T) {
	tr := NewTracker()
	a := tr.Cell(0, 3)
	b := tr.Cell(1, 3)
	c := tr.Cell(2, 3)
	a.SimNowNs.Store(int64(5 * time.Second))
	b.SimNowNs.Store(int64(2 * time.Second))
	c.SimNowNs.Store(int64(4 * time.Second))
	c.Done.Store(true)

	snap := tr.Snapshot()
	if snap.Shards != 3 || snap.ShardsDone != 1 {
		t.Fatalf("shards %d done %d", snap.Shards, snap.ShardsDone)
	}
	if snap.SimMax != 5*time.Second {
		t.Errorf("SimMax %v", snap.SimMax)
	}
	if snap.LagShard != 1 || snap.MaxLag != 3*time.Second {
		t.Errorf("lag shard %d lag %v, want shard 1 +3s", snap.LagShard, snap.MaxLag)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	p := New("serve-test")
	p.Track.Cell(0, 1).Events.Store(42)
	srv, err := Serve("127.0.0.1:0", p)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	body := httpGet(t, "http://"+srv.Addr()+"/metrics")
	seen := parsePrometheus(t, body)
	if !seen["fleet_events_total"] {
		t.Fatalf("scrape missing fleet_events_total:\n%s", body)
	}
	vars := httpGet(t, "http://"+srv.Addr()+"/debug/vars")
	if !strings.Contains(vars, "\"fleet_events_total\": 42") {
		t.Fatalf("/debug/vars missing counter: %s", vars)
	}
}

func TestRunInfoRoundTrip(t *testing.T) {
	ri := CollectRunInfo("fleet-http", 42, true)
	ri.SetFlag("shards", "4")
	if ri.GoVersion == "" || ri.GOMAXPROCS < 1 {
		t.Fatalf("incomplete env: %+v", ri)
	}
	p := New("x")
	p.StartSpan("run").End()
	h := NewLatencyHistogram()
	h.Observe(10)
	p.SetLatency(h)
	ri.Finish(p, 123*time.Millisecond)
	if ri.WallClockMs != 123 || len(ri.Phases) != 1 || ri.LatencyObs != 1 {
		t.Fatalf("finish did not fold results: %+v", ri)
	}
	cfg := ri.Config()
	if cfg.WallClockMs != 0 || cfg.Phases != nil || cfg.LatencyObs != 0 {
		t.Fatalf("Config() should clear machine-dependent fields: %+v", cfg)
	}
	if cfg.Name != "fleet-http" || cfg.Flags["shards"] != "4" {
		t.Fatalf("Config() lost configuration: %+v", cfg)
	}
	path := t.TempDir() + "/runinfo.json"
	if err := ri.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestNilPlaneSafe(t *testing.T) {
	var p *Plane
	p.StartSpan("x").Child("y").End()
	p.SetLatency(NewLatencyHistogram())
	if p.Latency() != nil {
		t.Fatal("nil plane latency")
	}
	var sb strings.Builder
	p.WritePrometheus(&sb)
	p.WriteVars(&sb)
	if StartProgress(&sb, nil, 0) != nil {
		t.Fatal("nil plane progress should be nil")
	}
	var pr *Progress
	pr.Stop()
}
