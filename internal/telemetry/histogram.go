// Package telemetry is the run-observability plane of the fleet engine: a
// metrics registry (counters, gauges, fixed-boundary log-scale histograms), a
// wall-clock phase profiler, a live run tracker with Prometheus/expvar
// exposition, and run-provenance capture.
//
// The package obeys the same attach-changes-nothing discipline as the flight
// recorder: nothing here ever feeds back into the deterministic simulation.
// Shard workers publish into preallocated atomic cells; exposition goroutines
// only read atomic snapshots; histograms merge in shard-index order so every
// derived statistic is byte-identical at any worker count. Wall-clock values
// (profiler spans, progress lines) come from the monotonic host clock and are
// never mixed into sim-time results.
package telemetry

import (
	"fmt"
	"math"
)

// Histogram is a fixed-boundary log-scale histogram. The boundaries are a
// pure function of the spec (lo, decades, buckets per decade), so two
// histograms built from the same constructor always agree bucket-for-bucket
// and merging is a plain count-wise sum. Quantiles are computed from bucket
// counts alone — never from the order observations arrived — which makes them
// exactly invariant across worker counts and, when the observed multiset is
// partition-invariant, across shard counts too.
//
// Histogram is NOT safe for concurrent use: like the simulation it measures,
// each shard owns its own instance and merging happens single-threaded in
// shard-index order after the run.
type Histogram struct {
	lo        float64
	perDecade int
	// bounds[i] is the exclusive upper edge of bucket i; bucket i covers
	// (bounds[i-1], bounds[i]] with bucket 0 covering (0, bounds[0]].
	bounds []float64
	// counts has len(bounds)+1 entries: one per bucket plus a final overflow
	// bucket for observations above the top edge. Values at or below lo land
	// in bucket 0.
	counts []uint64
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a log-scale histogram spanning decades powers of ten
// upward from lo, with perDecade buckets per decade. The relative resolution
// is 10^(1/perDecade): any quantile read off the histogram is within that
// factor of the exact order statistic.
func NewHistogram(lo float64, decades, perDecade int) *Histogram {
	if lo <= 0 || decades <= 0 || perDecade <= 0 {
		panic(fmt.Sprintf("telemetry: invalid histogram spec lo=%g decades=%d perDecade=%d", lo, decades, perDecade))
	}
	n := decades * perDecade
	h := &Histogram{
		lo:        lo,
		perDecade: perDecade,
		bounds:    make([]float64, n),
		counts:    make([]uint64, n+1),
		min:       math.Inf(1),
		max:       math.Inf(-1),
	}
	for i := range h.bounds {
		h.bounds[i] = lo * math.Pow(10, float64(i+1)/float64(perDecade))
	}
	return h
}

// NewLatencyHistogram is the stock latency histogram: milliseconds from 1 µs
// to 1000 s across 9 decades, 12 buckets per decade (~21% bucket width, ~10%
// worst-case quantile error against the exact order statistic).
func NewLatencyHistogram() *Histogram { return NewHistogram(1e-3, 9, 12) }

// Observe records one sample. NaN and negative values are dropped (latencies
// and rates are non-negative by construction; recording them would poison the
// deterministic sums).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) || v < 0 {
		return
	}
	h.counts[h.bucket(v)]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// bucket locates v's bucket index by binary search over the upper edges.
func (h *Histogram) bucket(v float64) int {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == len(bounds) means overflow
}

// Merge folds other into h. Both must come from the same constructor spec;
// merging incompatible histograms is a programming error and errors out
// rather than silently mixing boundaries. Callers merge in shard-index order,
// which keeps the (order-sensitive) float sum deterministic at any worker
// count; bucket counts and the quantiles derived from them are additionally
// order-independent.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if len(h.counts) != len(other.counts) || h.lo != other.lo || h.perDecade != other.perDecade {
		return fmt.Errorf("telemetry: merging histograms with different boundaries (lo=%g/%g, buckets=%d/%d)",
			h.lo, other.lo, len(h.counts), len(other.counts))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (merge-order dependent in the last
// float ulp; use quantiles for partition-invariant statistics).
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean of observations, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the exact observed extremes (0 when empty). Both are
// order-independent, so they are as partition-invariant as the multiset.
func (h *Histogram) Min() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.min
}

func (h *Histogram) Max() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the p-th percentile (0 < p <= 100) using the same
// ceil-rank convention as trace.Percentile, read off the bucket counts: the
// returned value is the representative (log-midpoint) of the bucket holding
// the rank-th observation, clamped to the exact Min/Max for the edge buckets.
// Because only integer bucket counts enter the computation, the result is
// bit-identical for any merge order of the same observation multiset.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			return h.representative(i)
		}
	}
	return h.max
}

// representative returns bucket i's reported value: the geometric midpoint of
// its edges, clamped into the observed [min, max] so single-bucket and edge
// cases report exact values.
func (h *Histogram) representative(i int) float64 {
	var v float64
	switch {
	case i == 0:
		v = h.lo * math.Pow(10, 0.5/float64(h.perDecade))
	case i >= len(h.bounds):
		v = h.max
	default:
		v = math.Sqrt(h.bounds[i-1] * h.bounds[i])
	}
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	return v
}

// RelativeResolution returns the worst-case multiplicative error of Quantile
// against the exact order statistic: half a bucket in log space.
func (h *Histogram) RelativeResolution() float64 {
	return math.Pow(10, 0.5/float64(h.perDecade)) - 1
}

// Buckets returns the non-empty (upper-edge, count) pairs in ascending order,
// for exposition and provenance output. The final overflow bucket reports
// +Inf as its edge.
func (h *Histogram) Buckets() ([]float64, []uint64) {
	if h == nil {
		return nil, nil
	}
	var edges []float64
	var counts []uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		edge := math.Inf(1)
		if i < len(h.bounds) {
			edge = h.bounds[i]
		}
		edges = append(edges, edge)
		counts = append(counts, c)
	}
	return edges, counts
}
