package mptcpgo

import (
	"io"

	"mptcpgo/internal/experiments"
)

// Result is the structured outcome of one paper experiment: tables, numeric
// series and run metadata, with Text, JSON and CSV encoders.
type Result = experiments.Result

// Series is one numeric metric series inside a Result.
type Series = experiments.Series

// ExperimentOption configures an experiment run; see WithQuick, WithSeed and
// WithPaperEraCPU.
type ExperimentOption = experiments.Option

// WithQuick selects the reduced sweep that finishes in seconds.
func WithQuick() ExperimentOption { return experiments.WithQuick() }

// WithSeed sets the base RNG seed; any value, including 0, is used as given.
// Without WithSeed the default seed 42 applies.
func WithSeed(seed uint64) ExperimentOption { return experiments.WithSeed(seed) }

// WithPaperEraCPU swaps this machine's measured per-byte checksum cost for a
// fixed 2012-class figure in the CPU-bound experiments (Figure 3), keeping
// the paper's curve shapes on modern hardware.
func WithPaperEraCPU() ExperimentOption { return experiments.WithPaperEraCPU() }

// ExperimentIDs lists the available paper experiments (fig3..fig11, mbox,
// rationale).
func ExperimentIDs() []string { return experiments.IDs() }

// Run executes one of the paper's experiments and returns its structured
// result.
func Run(id string, opts ...ExperimentOption) (*Result, error) {
	return experiments.Run(id, opts...)
}

// RunExperiment runs one of the paper's experiments and writes its tables to
// w as aligned text. Set quick to true for a reduced sweep.
//
// Deprecated-style compatibility wrapper: new code should use Run and the
// Result encoders. Note that for historical compatibility seed 0 selects the
// default seed (42) here; use Run with WithSeed(0) to really run seed 0.
func RunExperiment(w io.Writer, id string, quick bool, seed uint64) error {
	return experiments.RunAndPrint(w, id, experiments.Options{Quick: quick, Seed: seed})
}
